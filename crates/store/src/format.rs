//! The versioned binary snapshot format for an `(Interner, Database)` pair.
//!
//! Layout (all integers little-endian; see `DESIGN.md` §8 for the rationale
//! and versioning rules):
//!
//! ```text
//! magic    b"WDPTSNAP"                                       8 bytes
//! version  u32                                               = 1
//! section* tag u8 · len u64 · payload · crc32 u32
//! ```
//!
//! The CRC of a section covers its tag and length as well as the payload,
//! so *any* single corrupted byte after the version field is caught by a
//! checksum rather than by undefined downstream behavior. Sections appear
//! in a fixed order:
//!
//! | tag  | section    | payload                                          |
//! |------|------------|--------------------------------------------------|
//! | 0x01 | header     | symbols u64 · fresh u64 · relations u32 · tuples u64 |
//! | 0x02 | dictionary | per symbol: space u8 · len u32 · UTF-8 bytes     |
//! | 0x03 | relation   | pred u32 · arity u32 · rows u64 · column-major cells · per-column posting index |
//! | 0xFF | end        | empty                                            |
//!
//! Relation tuples are stored **sorted** (lexicographic on `Const` ids,
//! deduplicated) and column-major; each column also serializes its posting
//! index (`key → ascending row list`, keys ascending), so the decoder
//! reconstructs `Relation`s whose `matching` works immediately with zero
//! index rebuild. The decoder validates every structural invariant it
//! relies on (sortedness, posting targets, namespace of every id) and
//! returns a typed [`StoreError`] — never a panic — on anything off.

use crate::crc::{crc32, Crc32};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;
use wdpt_model::columnar::{
    encode_cells, encode_key_dir, read_uvarint, unzigzag, ColumnSlices, ColumnarRelation,
};
use wdpt_model::{Const, Database, Interner, Pred, Relation, SymbolSpace};
use wdpt_obs::{counter, span};

/// The eight magic bytes opening every snapshot.
pub const MAGIC: [u8; 8] = *b"WDPTSNAP";
/// The v1 (eager, fixed-width) format version — still the default write
/// format; see [`VERSION_V2`].
pub const VERSION: u32 = 1;
/// The v2 (zero-copy columnar, varint-compressed) format version. v2 files
/// decode into lazy [`Relation`]s borrowing from the shared snapshot
/// buffer; see `DESIGN.md` §13.
pub const VERSION_V2: u32 = 2;

pub(crate) const TAG_HEADER: u8 = 0x01;
pub(crate) const TAG_DICTIONARY: u8 = 0x02;
pub(crate) const TAG_RELATION: u8 = 0x03;
pub(crate) const TAG_DELTA_HEADER: u8 = 0x04;
pub(crate) const TAG_RELATION_DELTA: u8 = 0x05;
pub(crate) const TAG_RELATION_V2: u8 = 0x06;
pub(crate) const TAG_DICTIONARY_V2: u8 = 0x07;
pub(crate) const TAG_END: u8 = 0xFF;

/// Framing overhead of one section: tag + length + CRC. Used to bound
/// untrusted "number of sections" header fields against the bytes actually
/// present before any allocation sized from them.
pub(crate) const SECTION_FRAME_BYTES: usize = 1 + 8 + 4;

/// Everything that can go wrong reading or writing a snapshot. Corruption
/// surfaces as `Truncated` / `ChecksumMismatch` / `Malformed`, each naming
/// the section at fault so `wdpt-store verify` can point at it.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version is not one this build can read.
    UnsupportedVersion(u32),
    /// The file ends before the named section is complete.
    Truncated {
        /// Which section was being read.
        section: String,
    },
    /// A section's CRC does not match its bytes.
    ChecksumMismatch {
        /// Which section failed its checksum.
        section: String,
    },
    /// A section passed its checksum but violates a structural invariant
    /// (impossible for files written by this crate — a hand-edited or
    /// adversarial input).
    Malformed {
        /// Which section is malformed.
        section: String,
        /// What invariant failed.
        detail: String,
    },
    /// A value does not fit the fixed-width field the format gives it
    /// (e.g. more than `u32::MAX` rows in one relation). Raised at encode
    /// time so a too-wide value can never be silently truncated into a
    /// corrupt-but-valid-CRC snapshot.
    TooLarge {
        /// Which quantity overflowed its wire field.
        what: String,
        /// The value that did not fit.
        value: u64,
    },
    /// A text-input parse failure from the bulk loader, with its 1-based
    /// line number.
    Parse {
        /// 1-based line number in the text input.
        line: usize,
        /// What was wrong with the line.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a wdpt snapshot (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads {VERSION} and {VERSION_V2})"
                )
            }
            StoreError::Truncated { section } => {
                write!(f, "snapshot truncated inside the {section} section")
            }
            StoreError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in the {section} section")
            }
            StoreError::Malformed { section, detail } => {
                write!(f, "malformed {section} section: {detail}")
            }
            StoreError::TooLarge { what, value } => {
                write!(f, "{what} ({value}) exceeds the format's u32 field width")
            }
            StoreError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<wdpt_model::TooManyRows> for StoreError {
    fn from(e: wdpt_model::TooManyRows) -> StoreError {
        StoreError::TooLarge {
            what: "relation row id".to_string(),
            value: e.rows,
        }
    }
}

/// Checked narrowing for every u32-wide wire field: a value that does not
/// fit becomes a typed [`StoreError::TooLarge`] instead of a silent
/// truncation that would CRC-validate and decode as garbage.
pub(crate) fn len_u32(value: usize, what: &str) -> Result<u32, StoreError> {
    u32::try_from(value).map_err(|_| StoreError::TooLarge {
        what: what.to_string(),
        value: value as u64,
    })
}

/// FNV-1a 64-bit hash of a whole file's bytes. Used to chain delta
/// snapshots to the exact base (or predecessor delta) they were computed
/// against — cheap, dependency-free, and stable across platforms.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub(crate) fn space_code(space: SymbolSpace) -> u8 {
    match space {
        SymbolSpace::Var => 0,
        SymbolSpace::Const => 1,
        SymbolSpace::Pred => 2,
    }
}

pub(crate) fn space_from_code(code: u8) -> Option<SymbolSpace> {
    match code {
        0 => Some(SymbolSpace::Var),
        1 => Some(SymbolSpace::Const),
        2 => Some(SymbolSpace::Pred),
        _ => None,
    }
}

pub(crate) fn push_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let mut crc = Crc32::new();
    crc.update(&[tag]);
    crc.update(&(payload.len() as u64).to_le_bytes());
    crc.update(payload);
    out.extend_from_slice(&crc.finish().to_le_bytes());
}

/// Serializes a snapshot to bytes. Deterministic: the same `(Interner,
/// Database)` pair always yields identical bytes (relations ordered by
/// predicate id, posting keys ascending), so snapshots can be compared and
/// cached byte-wise.
pub fn snapshot_to_vec(interner: &Interner, db: &Database) -> Result<Vec<u8>, StoreError> {
    let _g = span!("store.encode");
    let mut rel_order: Vec<(Pred, &Relation)> = db.relations().collect();
    rel_order.sort_by_key(|(p, _)| *p);

    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());

    // Header.
    let mut header = Vec::with_capacity(8 + 8 + 4 + 8);
    header.extend_from_slice(&(interner.len() as u64).to_le_bytes());
    header.extend_from_slice(&interner.fresh_counter().to_le_bytes());
    header.extend_from_slice(&len_u32(rel_order.len(), "relation count")?.to_le_bytes());
    header.extend_from_slice(&(db.size() as u64).to_le_bytes());
    push_section(&mut out, TAG_HEADER, &header);

    // Dictionary: every interned symbol, in id order.
    push_section(
        &mut out,
        TAG_DICTIONARY,
        &encode_dictionary(interner.symbols())?,
    );

    // Relations, sorted tuples, column-major, plus per-column postings.
    for (pred, rel) in rel_order {
        let mut rows: Vec<&[Const]> = rel.tuples().collect();
        rows.sort_unstable();
        let arity = rel.arity();
        let mut payload = Vec::with_capacity(16 + rows.len() * arity * 4);
        payload.extend_from_slice(&pred.0.to_le_bytes());
        payload.extend_from_slice(&len_u32(arity, "relation arity")?.to_le_bytes());
        payload.extend_from_slice(&(rows.len() as u64).to_le_bytes());
        // One up-front check makes every row index below a valid u32.
        len_u32(rows.len(), "relation row count")?;
        for col in 0..arity {
            for t in &rows {
                payload.extend_from_slice(&t[col].0.to_le_bytes());
            }
        }
        // Posting indexes are derived from the *sorted* row order here (the
        // in-memory relation's lazily-built indexes, if any, refer to
        // insertion order). BTreeMap keeps keys ascending → determinism.
        for col in 0..arity {
            let mut postings: std::collections::BTreeMap<Const, Vec<u32>> = Default::default();
            for (row, t) in rows.iter().enumerate() {
                postings
                    .entry(t[col])
                    .or_default()
                    .push(len_u32(row, "posting row index")?);
            }
            payload.extend_from_slice(&(postings.len() as u64).to_le_bytes());
            for (key, rows_for_key) in &postings {
                payload.extend_from_slice(&key.0.to_le_bytes());
                payload.extend_from_slice(
                    &len_u32(rows_for_key.len(), "posting length")?.to_le_bytes(),
                );
            }
            for rows_for_key in postings.values() {
                for &r in rows_for_key {
                    payload.extend_from_slice(&r.to_le_bytes());
                }
            }
        }
        push_section(&mut out, TAG_RELATION, &payload);
    }

    push_section(&mut out, TAG_END, &[]);
    counter!("store.snapshot.bytes_encoded").add(out.len() as u64);
    Ok(out)
}

/// Serializes a snapshot in the requested format version. v1 stays the
/// default everywhere a version is not explicitly chosen — v2 readers are
/// required on every node before a fleet switches its writers.
pub fn snapshot_to_vec_versioned(
    interner: &Interner,
    db: &Database,
    version: u32,
) -> Result<Vec<u8>, StoreError> {
    match version {
        VERSION => snapshot_to_vec(interner, db),
        VERSION_V2 => snapshot_to_vec_v2(interner, db),
        v => Err(StoreError::UnsupportedVersion(v)),
    }
}

/// Serializes a v2 (zero-copy columnar) snapshot. Deterministic like
/// [`snapshot_to_vec`]: same pair, same bytes. Per relation and column the
/// payload carries a zigzag-delta varint **cells blob** and a delta-varint
/// **key directory** (ascending distinct values + posting-list lengths);
/// posting row-lists are derived from the cells at decode time, so they
/// cost zero bytes. The dictionary is front-coded (shared-prefix length +
/// suffix), which is where catalogs with systematic IRIs win the most.
pub fn snapshot_to_vec_v2(interner: &Interner, db: &Database) -> Result<Vec<u8>, StoreError> {
    let _g = span!("store.encode");
    let mut rel_order: Vec<(Pred, &Relation)> = db.relations().collect();
    rel_order.sort_by_key(|(p, _)| *p);

    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION_V2.to_le_bytes());

    // Header — identical payload to v1.
    let mut header = Vec::with_capacity(8 + 8 + 4 + 8);
    header.extend_from_slice(&(interner.len() as u64).to_le_bytes());
    header.extend_from_slice(&interner.fresh_counter().to_le_bytes());
    header.extend_from_slice(&len_u32(rel_order.len(), "relation count")?.to_le_bytes());
    header.extend_from_slice(&(db.size() as u64).to_le_bytes());
    push_section(&mut out, TAG_HEADER, &header);

    push_section(
        &mut out,
        TAG_DICTIONARY_V2,
        &encode_dictionary_v2(interner.symbols()),
    );

    for (pred, rel) in rel_order {
        let mut rows: Vec<&[Const]> = rel.tuples().collect();
        rows.sort_unstable();
        let arity = rel.arity();
        // One up-front check bounds every row id to the u32 space the
        // decoder re-validates.
        len_u32(rows.len(), "relation row count")?;
        let mut payload = Vec::new();
        payload.extend_from_slice(&pred.0.to_le_bytes());
        payload.extend_from_slice(&len_u32(arity, "relation arity")?.to_le_bytes());
        payload.extend_from_slice(&(rows.len() as u64).to_le_bytes());
        // Per-column blobs first, so the fixed-width column table can be
        // written before them.
        let mut blobs: Vec<(Vec<u8>, u64, Vec<u8>)> = Vec::with_capacity(arity);
        for col in 0..arity {
            let mut cells = Vec::new();
            encode_cells(&mut cells, rows.iter().map(|t| t[col].0));
            // BTreeMap keeps keys ascending → deterministic directory.
            let mut counts: std::collections::BTreeMap<Const, u32> = Default::default();
            for t in &rows {
                *counts.entry(t[col]).or_insert(0) += 1;
            }
            let mut dir = Vec::new();
            encode_key_dir(&mut dir, counts.iter().map(|(k, &n)| (k.0, n)));
            blobs.push((cells, counts.len() as u64, dir));
        }
        for (cells, keys, dir) in &blobs {
            payload.extend_from_slice(&(cells.len() as u64).to_le_bytes());
            payload.extend_from_slice(&keys.to_le_bytes());
            payload.extend_from_slice(&(dir.len() as u64).to_le_bytes());
        }
        for (cells, _, dir) in &blobs {
            payload.extend_from_slice(cells);
            payload.extend_from_slice(dir);
        }
        push_section(&mut out, TAG_RELATION_V2, &payload);
    }

    push_section(&mut out, TAG_END, &[]);
    counter!("store.snapshot.bytes_encoded").add(out.len() as u64);
    Ok(out)
}

/// Front-codes the dictionary: per symbol, `space u8 · shared-prefix-len
/// varint · suffix-len varint · suffix bytes`, where the prefix is shared
/// with the *previous* entry's name (byte-wise — reassembly restores the
/// exact original, so UTF-8 validation of the whole name still applies).
pub(crate) fn encode_dictionary_v2<'a>(
    symbols: impl Iterator<Item = (SymbolSpace, &'a str)>,
) -> Vec<u8> {
    use wdpt_model::columnar::write_uvarint;
    let mut dict = Vec::new();
    let mut prev: Vec<u8> = Vec::new();
    for (space, name) in symbols {
        let bytes = name.as_bytes();
        let shared = prev
            .iter()
            .zip(bytes)
            .take_while(|(a, b)| a == b)
            .count();
        dict.push(space_code(space));
        write_uvarint(&mut dict, shared as u64);
        write_uvarint(&mut dict, (bytes.len() - shared) as u64);
        dict.extend_from_slice(&bytes[shared..]);
        prev.clear();
        prev.extend_from_slice(bytes);
    }
    dict
}

/// Encodes a run of dictionary entries (`space u8 · len u32 · bytes`) —
/// shared between the full snapshot dictionary and the appended-symbols
/// dictionary of a delta.
pub(crate) fn encode_dictionary<'a>(
    symbols: impl Iterator<Item = (SymbolSpace, &'a str)>,
) -> Result<Vec<u8>, StoreError> {
    let mut dict = Vec::new();
    for (space, name) in symbols {
        dict.push(space_code(space));
        dict.extend_from_slice(&len_u32(name.len(), "symbol name length")?.to_le_bytes());
        dict.extend_from_slice(name.as_bytes());
    }
    Ok(dict)
}

/// Writes a snapshot to a writer. Returns the byte count.
pub fn write_snapshot<W: Write>(
    w: &mut W,
    interner: &Interner,
    db: &Database,
) -> Result<u64, StoreError> {
    let bytes = snapshot_to_vec(interner, db)?;
    w.write_all(&bytes)?;
    Ok(bytes.len() as u64)
}

/// Writes a snapshot to a file (atomically: a temp file in the same
/// directory, then a rename, so a crash mid-write never leaves a partial
/// snapshot under the final name).
pub fn save_snapshot(path: &Path, interner: &Interner, db: &Database) -> Result<u64, StoreError> {
    save_snapshot_versioned(path, interner, db, VERSION)
}

/// [`save_snapshot`] with an explicit format version (`wdpt-store build
/// --format 2` / `apply --format 2` route through this).
pub fn save_snapshot_versioned(
    path: &Path,
    interner: &Interner,
    db: &Database,
    version: u32,
) -> Result<u64, StoreError> {
    let _g = span!("store.save_snapshot");
    let bytes = snapshot_to_vec_versioned(interner, db, version)?;
    let tmp = path.with_extension("snap.tmp");
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(&bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    counter!("store.snapshot.saves").add(1);
    Ok(bytes.len() as u64)
}

/// A byte reader with typed truncation errors.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize, section: &str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                section: section.to_string(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, section: &str) -> Result<u8, StoreError> {
        Ok(self.take(1, section)?[0])
    }

    pub(crate) fn u32(&mut self, section: &str) -> Result<u32, StoreError> {
        let b = self.take(4, section)?;
        // `take` guarantees the width, but the decode paths are sworn off
        // unwrap/expect entirely — a length bug here must surface as a
        // typed error, not a panic an adversarial input could reach.
        b.try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| StoreError::Truncated {
                section: section.to_string(),
            })
    }

    pub(crate) fn u64(&mut self, section: &str) -> Result<u64, StoreError> {
        let b = self.take(8, section)?;
        b.try_into()
            .map(u64::from_le_bytes)
            .map_err(|_| StoreError::Truncated {
                section: section.to_string(),
            })
    }
}

pub(crate) fn malformed(section: &str, detail: impl Into<String>) -> StoreError {
    StoreError::Malformed {
        section: section.to_string(),
        detail: detail.into(),
    }
}

/// Infallible-by-inspection little-endian u32 read: `None` instead of the
/// `try_into().unwrap()` panic the decode paths used to carry.
pub(crate) fn le_u32(bytes: &[u8]) -> Option<u32> {
    Some(u32::from_le_bytes(<[u8; 4]>::try_from(bytes).ok()?))
}

/// Bounds an untrusted count field against the bytes that would have to
/// carry it: `declared` items of at least `min_bytes_per_item` each must
/// fit in `remaining` bytes. Returns the count as a `usize` on success; a
/// length-bomb (declared ≫ payload) is a typed [`StoreError::Malformed`]
/// *before* any `Vec::with_capacity` is sized from it — the pre-fix
/// decoders allocated first and validated later, so a 16-byte corrupt file
/// could demand a multi-GiB allocation.
pub(crate) fn checked_count(
    declared: u64,
    min_bytes_per_item: u64,
    remaining: usize,
    section: &str,
    what: &str,
) -> Result<usize, StoreError> {
    let needed = declared.checked_mul(min_bytes_per_item);
    match needed {
        Some(n) if n <= remaining as u64 => usize::try_from(declared)
            .map_err(|_| malformed(section, format!("{what} count {declared} overflows usize"))),
        _ => Err(malformed(
            section,
            format!(
                "declares {declared} {what} (≥{min_bytes_per_item} bytes each) \
                 but only {remaining} bytes remain"
            ),
        )),
    }
}

/// A checksummed section sliced out of the snapshot.
pub(crate) struct Section<'a> {
    pub(crate) tag: u8,
    pub(crate) payload: &'a [u8],
    /// Byte offset of the payload within the whole file — the zero-copy v2
    /// decoder turns intra-payload positions into absolute ranges of the
    /// shared `Arc<[u8]>` with this.
    pub(crate) offset: usize,
}

/// Reads the next section, verifying its CRC. `label` names the section we
/// *expect* for error messages before the tag is known.
pub(crate) fn read_section<'a>(r: &mut Reader<'a>, label: &str) -> Result<Section<'a>, StoreError> {
    let start = r.pos;
    let tag = r.u8(label)?;
    let len = r.u64(label)?;
    let len = usize::try_from(len).map_err(|_| malformed(label, "section length overflow"))?;
    let offset = r.pos;
    let payload = r.take(len, label)?;
    let stored_crc = r.u32(label)?;
    // CRC covers tag + len + payload — i.e. everything since `start` except
    // the CRC field itself.
    let computed = crc32(&r.bytes[start..start + 1 + 8 + len]);
    if computed != stored_crc {
        return Err(StoreError::ChecksumMismatch {
            section: label.to_string(),
        });
    }
    Ok(Section {
        tag,
        payload,
        offset,
    })
}

/// The parsed header section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Format version of the file.
    pub version: u32,
    /// Interned symbols across all namespaces.
    pub symbols: u64,
    /// The interner's fresh-name counter.
    pub fresh_counter: u64,
    /// Number of relation sections.
    pub relations: u32,
    /// Total tuple count across relations.
    pub tuples: u64,
}

/// Summary of one relation section (from [`inspect_snapshot`]).
#[derive(Debug, Clone)]
pub struct RelationSummary {
    /// The predicate's interned id.
    pub pred: u32,
    /// The predicate's name, when the dictionary resolves it.
    pub name: String,
    /// Relation arity.
    pub arity: u32,
    /// Tuple count.
    pub rows: u64,
    /// Serialized (possibly compressed) size of the section payload.
    pub bytes: usize,
    /// What the same relation costs in the uncompressed v1 encoding —
    /// equal to `bytes` for v1 sections, computed from the row/key counts
    /// for v2, so operators can read the compression ratio off `inspect`.
    pub raw_bytes: u64,
}

/// A full snapshot summary: what `wdpt-store inspect` prints.
#[derive(Debug, Clone)]
pub struct SnapshotSummary {
    /// The parsed header.
    pub header: SnapshotHeader,
    /// Per-relation summaries, in file order.
    pub relations: Vec<RelationSummary>,
    /// Total file size in bytes.
    pub bytes: usize,
    /// Serialized size of the dictionary section payload.
    pub dict_bytes: usize,
    /// The dictionary's uncompressed (v1 encoding) size.
    pub dict_raw_bytes: u64,
}

pub(crate) fn read_magic_version(r: &mut Reader<'_>) -> Result<u32, StoreError> {
    let magic = r.take(MAGIC.len(), "magic")?;
    if magic != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = r.u32("version")?;
    if version != VERSION && version != VERSION_V2 {
        return Err(StoreError::UnsupportedVersion(version));
    }
    Ok(version)
}

fn parse_header(payload: &[u8], version: u32) -> Result<SnapshotHeader, StoreError> {
    let mut r = Reader::new(payload);
    let header = SnapshotHeader {
        version,
        symbols: r.u64("header")?,
        fresh_counter: r.u64("header")?,
        relations: r.u32("header")?,
        tuples: r.u64("header")?,
    };
    if r.remaining() != 0 {
        return Err(malformed("header", "trailing bytes"));
    }
    Ok(header)
}

pub(crate) fn expect_tag(section: &Section<'_>, tag: u8, label: &str) -> Result<(), StoreError> {
    if section.tag != tag {
        return Err(malformed(
            label,
            format!(
                "expected section tag {tag:#04x}, found {:#04x}",
                section.tag
            ),
        ));
    }
    Ok(())
}

fn parse_dictionary(
    payload: &[u8],
    header: &SnapshotHeader,
) -> Result<Vec<(SymbolSpace, String)>, StoreError> {
    let count = usize::try_from(header.symbols)
        .ok()
        .filter(|&n| u32::try_from(n).is_ok())
        .ok_or_else(|| malformed("dictionary", "symbol count exceeds u32 id space"))?;
    parse_dictionary_entries(payload, count)
}

/// Parses exactly `count` dictionary entries from `payload` (shared with
/// the appended-symbols dictionary of a delta snapshot).
pub(crate) fn parse_dictionary_entries(
    payload: &[u8],
    count: usize,
) -> Result<Vec<(SymbolSpace, String)>, StoreError> {
    // Every entry is at least 5 bytes (space u8 · len u32 · 0+ name
    // bytes); a declared count the payload cannot possibly hold is a
    // typed error before anything is sized from it.
    checked_count(count as u64, 5, payload.len(), "dictionary", "symbols")?;
    let mut r = Reader::new(payload);
    let mut symbols = Vec::with_capacity(count);
    for i in 0..count {
        let space = space_from_code(r.u8("dictionary")?)
            .ok_or_else(|| malformed("dictionary", format!("bad namespace code for symbol {i}")))?;
        let len = r.u32("dictionary")? as usize;
        let bytes = r.take(len, "dictionary")?;
        let name = std::str::from_utf8(bytes)
            .map_err(|_| malformed("dictionary", format!("symbol {i} is not UTF-8")))?;
        symbols.push((space, name.to_string()));
    }
    if r.remaining() != 0 {
        return Err(malformed("dictionary", "trailing bytes"));
    }
    Ok(symbols)
}

/// Per-symbol namespace lookup table for cell validation (dense, so the
/// per-cell check in relation decoding is an array index, not a hash probe).
pub(crate) struct SpaceTable {
    pub(crate) spaces: Vec<SymbolSpace>,
}

impl SpaceTable {
    /// Builds the table from an interner's id-ordered symbol listing.
    pub(crate) fn from_interner(interner: &Interner) -> SpaceTable {
        SpaceTable {
            spaces: interner.symbols().map(|(s, _)| s).collect(),
        }
    }

    pub(crate) fn is(&self, id: u32, space: SymbolSpace) -> bool {
        self.spaces.get(id as usize) == Some(&space)
    }
}

struct DecodedRelation {
    pred: Pred,
    relation: Relation,
}

fn parse_relation(
    payload: &[u8],
    idx: usize,
    spaces: &SpaceTable,
) -> Result<DecodedRelation, StoreError> {
    let label = format!("relation[{idx}]");
    let label = label.as_str();
    let mut r = Reader::new(payload);
    let pred_id = r.u32(label)?;
    if !spaces.is(pred_id, SymbolSpace::Pred) {
        return Err(malformed(label, format!("id {pred_id} is not a predicate")));
    }
    let arity_u32 = r.u32(label)?;
    let rows_u64 = r.u64(label)?;
    // Bound both counts against the bytes that must carry them *before*
    // sizing any allocation: each column costs at least its 8-byte posting
    // key count (so `arity` alone cannot length-bomb a zero-row relation),
    // and each row costs 4 bytes per column of cells. The pre-fix code
    // checked only `arity·rows·4`, which is 0 whenever either factor is —
    // a 28-byte file claiming 4 billion empty columns allocated first.
    let arity = checked_count(u64::from(arity_u32), 8, r.remaining(), label, "columns")?;
    if arity == 0 && rows_u64 > 1 {
        return Err(malformed(label, "nullary relation with more than one row"));
    }
    let rows = checked_count(
        rows_u64,
        4 * (arity as u64).max(1),
        r.remaining(),
        label,
        "rows",
    )?;
    let cells = arity
        .checked_mul(rows)
        .and_then(|c| c.checked_mul(4))
        .ok_or_else(|| malformed(label, "cell count overflow"))?;
    if r.remaining() < cells {
        return Err(StoreError::Truncated {
            section: label.to_string(),
        });
    }

    // Columns are stored column-major; reassemble row-major tuples.
    let mut columns: Vec<Vec<Const>> = Vec::with_capacity(arity);
    for col in 0..arity {
        let raw = r.take(rows * 4, label)?;
        let mut column = Vec::with_capacity(rows);
        for cell in raw.chunks_exact(4) {
            let id = le_u32(cell).ok_or_else(|| malformed(label, "misaligned cell bytes"))?;
            if !spaces.is(id, SymbolSpace::Const) {
                return Err(malformed(
                    label,
                    format!("column {col} holds id {id}, which is not a constant"),
                ));
            }
            column.push(Const(id));
        }
        columns.push(column);
    }
    let mut tuples: Vec<Box<[Const]>> = Vec::with_capacity(rows);
    for row in 0..rows {
        tuples.push(columns.iter().map(|c| c[row]).collect());
    }
    if let Some(w) = tuples.windows(2).find(|w| w[0] >= w[1]) {
        let detail = if w[0] == w[1] {
            "duplicate tuple in sorted block"
        } else {
            "tuple block is not sorted"
        };
        return Err(malformed(label, detail));
    }

    // Posting indexes: keys ascending, row lists ascending, every entry
    // pointing at a row whose cell really holds the key, and exactly `rows`
    // entries per column — together that pins the index to be exactly what
    // a rebuild would produce.
    let mut indexes: Vec<HashMap<Const, Vec<u32>>> = Vec::with_capacity(arity);
    // The loop is driven by the wire format (one serialized index per
    // column, read sequentially), not by iterating `tuples`.
    #[allow(clippy::needless_range_loop)]
    for col in 0..arity {
        let keys = r.u64(label)?;
        let keys = usize::try_from(keys).map_err(|_| malformed(label, "key count overflow"))?;
        if keys > rows {
            return Err(malformed(
                label,
                format!("column {col} claims {keys} keys for {rows} rows"),
            ));
        }
        let mut lens: Vec<(Const, u32)> = Vec::with_capacity(keys);
        let mut prev_key: Option<u32> = None;
        let mut total: u64 = 0;
        for _ in 0..keys {
            let key = r.u32(label)?;
            if prev_key.is_some_and(|p| p >= key) {
                return Err(malformed(label, format!("column {col} keys not ascending")));
            }
            prev_key = Some(key);
            if !spaces.is(key, SymbolSpace::Const) {
                return Err(malformed(
                    label,
                    format!("column {col} posting key {key} is not a constant"),
                ));
            }
            let len = r.u32(label)?;
            total += u64::from(len);
            lens.push((Const(key), len));
        }
        if total != rows_u64 {
            return Err(malformed(
                label,
                format!("column {col} postings cover {total} rows, expected {rows_u64}"),
            ));
        }
        let mut index: HashMap<Const, Vec<u32>> = HashMap::with_capacity(keys);
        for (key, len) in lens {
            // `len ≤ Σlens = rows` was proven above, and `rows` is bounded
            // by the remaining-bytes budget — so this capacity can no
            // longer be a length-bomb; clamp anyway so the bound does not
            // depend on check ordering at a distance.
            let mut postings = Vec::with_capacity((len as usize).min(rows));
            let mut prev: Option<u32> = None;
            for _ in 0..len {
                let row = r.u32(label)?;
                if row as usize >= rows {
                    return Err(malformed(
                        label,
                        format!("column {col} posting row {row} out of range"),
                    ));
                }
                if prev.is_some_and(|p| p >= row) {
                    return Err(malformed(
                        label,
                        format!("column {col} postings for {} not ascending", key.0),
                    ));
                }
                prev = Some(row);
                postings.push(row);
            }
            index.insert(key, postings);
        }
        // Cross-check every posting against the tuple block.
        for (key, postings) in &index {
            for &row in postings {
                if tuples[row as usize][col] != *key {
                    return Err(malformed(
                        label,
                        format!(
                            "column {col} posting for id {} points at a mismatched row",
                            key.0
                        ),
                    ));
                }
            }
        }
        indexes.push(index);
    }
    if r.remaining() != 0 {
        return Err(malformed(label, "trailing bytes"));
    }
    let mut relation = Relation::from_sorted(arity, tuples);
    for (col, index) in indexes.into_iter().enumerate() {
        relation.install_column_index(col, index);
    }
    Ok(DecodedRelation {
        pred: Pred(pred_id),
        relation,
    })
}

/// Decodes a snapshot from bytes into a fresh `(Interner, Database)` pair,
/// dispatching on the version field: v1 materializes eagerly; v2 copies
/// the bytes into a shared buffer once and decodes zero-copy (callers that
/// already hold an `Arc<[u8]>` — [`load_snapshot`], the replication
/// bootstrap — use [`decode_snapshot_shared`] and skip even that copy).
pub fn decode_snapshot(bytes: &[u8]) -> Result<(Interner, Database), StoreError> {
    if peek_version(bytes)? == VERSION_V2 {
        return decode_snapshot_shared(&Arc::from(bytes));
    }
    decode_snapshot_v1(bytes)
}

/// Reads the magic and version fields without consuming anything else.
pub fn peek_version(bytes: &[u8]) -> Result<u32, StoreError> {
    read_magic_version(&mut Reader::new(bytes))
}

fn decode_snapshot_v1(bytes: &[u8]) -> Result<(Interner, Database), StoreError> {
    let _g = span!("store.decode");
    let mut r = Reader::new(bytes);
    let version = read_magic_version(&mut r)?;

    let section = read_section(&mut r, "header")?;
    if section.tag == TAG_DELTA_HEADER {
        return Err(malformed(
            "header",
            "file is a delta snapshot; apply it to its base first (wdpt-store apply)",
        ));
    }
    expect_tag(&section, TAG_HEADER, "header")?;
    let header = parse_header(section.payload, version)?;

    let section = read_section(&mut r, "dictionary")?;
    expect_tag(&section, TAG_DICTIONARY, "dictionary")?;
    let symbols = parse_dictionary(section.payload, &header)?;
    let spaces = SpaceTable {
        spaces: symbols.iter().map(|(s, _)| *s).collect(),
    };
    let interner = Interner::from_symbols(symbols, header.fresh_counter)
        .ok_or_else(|| malformed("dictionary", "duplicate symbol entry"))?;

    let rel_count = checked_count(
        u64::from(header.relations),
        SECTION_FRAME_BYTES as u64,
        r.remaining(),
        "header",
        "relation sections",
    )?;
    let mut relations: Vec<(Pred, Relation)> = Vec::with_capacity(rel_count);
    let mut seen_preds = std::collections::HashSet::new();
    let mut total_tuples: u64 = 0;
    for idx in 0..rel_count {
        let label = format!("relation[{idx}]");
        let section = read_section(&mut r, &label)?;
        expect_tag(&section, TAG_RELATION, &label)?;
        let decoded = parse_relation(section.payload, idx, &spaces)?;
        if !seen_preds.insert(decoded.pred) {
            return Err(malformed(&label, "predicate appears in two relations"));
        }
        total_tuples += decoded.relation.len() as u64;
        relations.push((decoded.pred, decoded.relation));
    }
    if total_tuples != header.tuples {
        return Err(malformed(
            "header",
            format!(
                "header claims {} tuples, sections hold {total_tuples}",
                header.tuples
            ),
        ));
    }

    let section = read_section(&mut r, "end")?;
    expect_tag(&section, TAG_END, "end")?;
    if !section.payload.is_empty() {
        return Err(malformed("end", "non-empty end section"));
    }
    if r.remaining() != 0 {
        return Err(malformed("end", "trailing bytes after end section"));
    }

    counter!("store.snapshot.loads").add(1);
    counter!("store.snapshot.tuples_loaded").add(total_tuples);
    Ok((interner, Database::from_sorted(relations)))
}

/// Decodes a snapshot held in a shared buffer. For v2 files this is the
/// zero-copy path: relations come out **lazy**, their cells and posting
/// directories borrowing from `bytes` (each keeps its own `Arc` clone, so
/// the buffer outlives any `Arc<Database>` swap that drops the rest of the
/// load context — see DESIGN.md §13 for the lifetime rules). Load cost is
/// CRC verification plus one streaming validation pass per section; no
/// tuple, index, or string-heavy structure is materialized here except the
/// dictionary. v1 files take the eager path unchanged.
pub fn decode_snapshot_shared(bytes: &Arc<[u8]>) -> Result<(Interner, Database), StoreError> {
    if peek_version(bytes)? != VERSION_V2 {
        return decode_snapshot_v1(bytes);
    }
    let _g = span!("store.decode");
    let mut r = Reader::new(bytes);
    let version = read_magic_version(&mut r)?;

    let section = read_section(&mut r, "header")?;
    if section.tag == TAG_DELTA_HEADER {
        return Err(malformed(
            "header",
            "file is a delta snapshot; apply it to its base first (wdpt-store apply)",
        ));
    }
    expect_tag(&section, TAG_HEADER, "header")?;
    let header = parse_header(section.payload, version)?;

    let section = read_section(&mut r, "dictionary")?;
    expect_tag(&section, TAG_DICTIONARY_V2, "dictionary")?;
    let count = usize::try_from(header.symbols)
        .ok()
        .filter(|&n| u32::try_from(n).is_ok())
        .ok_or_else(|| malformed("dictionary", "symbol count exceeds u32 id space"))?;
    let symbols = parse_dictionary_v2(section.payload, count)?;
    let spaces = SpaceTable {
        spaces: symbols.iter().map(|(s, _)| *s).collect(),
    };
    let interner = Interner::from_symbols(symbols, header.fresh_counter)
        .ok_or_else(|| malformed("dictionary", "duplicate symbol entry"))?;

    let rel_count = checked_count(
        u64::from(header.relations),
        SECTION_FRAME_BYTES as u64,
        r.remaining(),
        "header",
        "relation sections",
    )?;
    let mut relations: Vec<(Pred, Relation)> = Vec::with_capacity(rel_count);
    let mut seen_preds = std::collections::HashSet::new();
    let mut total_tuples: u64 = 0;
    for idx in 0..rel_count {
        let label = format!("relation[{idx}]");
        let section = read_section(&mut r, &label)?;
        expect_tag(&section, TAG_RELATION_V2, &label)?;
        let (pred, relation) = parse_relation_v2(bytes, &section, idx, &spaces)?;
        if !seen_preds.insert(pred) {
            return Err(malformed(&label, "predicate appears in two relations"));
        }
        total_tuples += relation.len() as u64;
        relations.push((pred, relation));
    }
    if total_tuples != header.tuples {
        return Err(malformed(
            "header",
            format!(
                "header claims {} tuples, sections hold {total_tuples}",
                header.tuples
            ),
        ));
    }

    let section = read_section(&mut r, "end")?;
    expect_tag(&section, TAG_END, "end")?;
    if !section.payload.is_empty() {
        return Err(malformed("end", "non-empty end section"));
    }
    if r.remaining() != 0 {
        return Err(malformed("end", "trailing bytes after end section"));
    }

    counter!("store.snapshot.loads").add(1);
    counter!("store.snapshot.tuples_loaded").add(total_tuples);
    Ok((interner, Database::from_sorted(relations)))
}

/// Decodes the front-coded v2 dictionary (inverse of
/// [`encode_dictionary_v2`]).
fn parse_dictionary_v2(
    payload: &[u8],
    count: usize,
) -> Result<Vec<(SymbolSpace, String)>, StoreError> {
    // Minimum entry: space byte + two one-byte varints.
    checked_count(count as u64, 3, payload.len(), "dictionary", "symbols")?;
    let mut symbols = Vec::with_capacity(count);
    let mut pos = 0usize;
    let mut prev: Vec<u8> = Vec::new();
    let truncated = || StoreError::Truncated {
        section: "dictionary".to_string(),
    };
    for i in 0..count {
        let space_byte = *payload.get(pos).ok_or_else(truncated)?;
        pos += 1;
        let space = space_from_code(space_byte)
            .ok_or_else(|| malformed("dictionary", format!("bad namespace code for symbol {i}")))?;
        let shared = read_uvarint(payload, &mut pos).ok_or_else(truncated)?;
        let shared = usize::try_from(shared)
            .ok()
            .filter(|&s| s <= prev.len())
            .ok_or_else(|| {
                malformed(
                    "dictionary",
                    format!("symbol {i} shares a longer prefix than its predecessor has"),
                )
            })?;
        let suffix_len = read_uvarint(payload, &mut pos).ok_or_else(truncated)?;
        let suffix_len = checked_count(
            suffix_len,
            1,
            payload.len() - pos,
            "dictionary",
            "suffix bytes",
        )?;
        let suffix = payload.get(pos..pos + suffix_len).ok_or_else(truncated)?;
        pos += suffix_len;
        prev.truncate(shared);
        prev.extend_from_slice(suffix);
        let name = std::str::from_utf8(&prev)
            .map_err(|_| malformed("dictionary", format!("symbol {i} is not UTF-8")))?;
        symbols.push((space, name.to_string()));
    }
    if pos != payload.len() {
        return Err(malformed("dictionary", "trailing bytes"));
    }
    Ok(symbols)
}

/// Parses one v2 relation section into a lazy [`Relation`]: reads the
/// column table, slices the blobs out of the shared buffer, and runs one
/// **allocation-free** validation pass over every stream so the lazy
/// decoders can never observe a malformed byte later. Key directories are
/// checked for internal consistency (ascending in-namespace keys, lengths
/// summing to the row count); their agreement with the cells is enforced
/// by construction for files this crate writes and cross-checked by
/// `wdpt-store verify` — a hand-forged directory can skew statistics but
/// never query answers, since posting lists are derived from the cells.
fn parse_relation_v2(
    raw: &Arc<[u8]>,
    section: &Section<'_>,
    idx: usize,
    spaces: &SpaceTable,
) -> Result<(Pred, Relation), StoreError> {
    let label = format!("relation[{idx}]");
    let label = label.as_str();
    let mut r = Reader::new(section.payload);
    let pred_id = r.u32(label)?;
    if !spaces.is(pred_id, SymbolSpace::Pred) {
        return Err(malformed(label, format!("id {pred_id} is not a predicate")));
    }
    let arity_u32 = r.u32(label)?;
    let rows_u64 = r.u64(label)?;
    if rows_u64 > u64::from(u32::MAX) {
        return Err(malformed(label, "row count exceeds the u32 id space"));
    }
    // Each column owes a 24-byte table entry; bound `arity` on that before
    // sizing anything from it.
    let arity = checked_count(u64::from(arity_u32), 24, r.remaining(), label, "columns")?;
    if arity == 0 && rows_u64 > 1 {
        return Err(malformed(label, "nullary relation with more than one row"));
    }
    let rows = rows_u64 as usize;
    let mut table: Vec<(u64, u64, u64)> = Vec::with_capacity(arity);
    for _ in 0..arity {
        let cells_bytes = r.u64(label)?;
        let keys = r.u64(label)?;
        let dir_bytes = r.u64(label)?;
        table.push((cells_bytes, keys, dir_bytes));
    }

    let base = section.offset;
    let mut columns: Vec<ColumnSlices> = Vec::with_capacity(arity);
    for (col, &(cells_bytes, keys_u64, dir_bytes)) in table.iter().enumerate() {
        let cells_bytes = checked_count(cells_bytes, 1, r.remaining(), label, "cells bytes")?;
        if rows > cells_bytes {
            return Err(malformed(
                label,
                format!("column {col} declares {rows} rows in {cells_bytes} cells bytes"),
            ));
        }
        let cells_start = base + r.pos;
        r.take(cells_bytes, label)?;
        let dir_bytes = checked_count(dir_bytes, 1, r.remaining(), label, "directory bytes")?;
        // Each directory entry is at least two varint bytes.
        let keys = checked_count(keys_u64, 2, dir_bytes, label, "keys")?;
        if keys > rows {
            return Err(malformed(
                label,
                format!("column {col} claims {keys} keys for {rows} rows"),
            ));
        }
        let dir_start = base + r.pos;
        let dir_blob = r.take(dir_bytes, label)?;
        validate_key_dir(dir_blob, keys, rows_u64, spaces, label, col)?;
        columns.push(ColumnSlices {
            cells: cells_start..cells_start + cells_bytes,
            keys,
            key_dir: dir_start..dir_start + dir_bytes,
        });
    }
    if r.remaining() != 0 {
        return Err(malformed(label, "trailing bytes"));
    }
    validate_cells_streams(raw, &columns, rows, spaces, label)?;

    let backing = ColumnarRelation::new(raw.clone(), arity, rows, columns);
    Ok((Pred(pred_id), Relation::from_columnar(backing)))
}

/// Validates one column's key directory: well-formed varints consumed
/// exactly, strictly ascending in-namespace keys, non-empty posting
/// lengths summing to the row count.
fn validate_key_dir(
    blob: &[u8],
    keys: usize,
    rows: u64,
    spaces: &SpaceTable,
    label: &str,
    col: usize,
) -> Result<(), StoreError> {
    let mut pos = 0usize;
    let mut key = 0u64;
    let mut covered = 0u64;
    for i in 0..keys {
        let delta = read_uvarint(blob, &mut pos)
            .ok_or_else(|| malformed(label, format!("column {col} directory truncated")))?;
        if i > 0 && delta == 0 {
            return Err(malformed(label, format!("column {col} keys not ascending")));
        }
        key = if i == 0 {
            delta
        } else {
            key.checked_add(delta)
                .ok_or_else(|| malformed(label, format!("column {col} key overflow")))?
        };
        if key > u64::from(u32::MAX) || !spaces.is(key as u32, SymbolSpace::Const) {
            return Err(malformed(
                label,
                format!("column {col} posting key {key} is not a constant"),
            ));
        }
        let len = read_uvarint(blob, &mut pos)
            .ok_or_else(|| malformed(label, format!("column {col} directory truncated")))?;
        if len == 0 {
            return Err(malformed(label, format!("column {col} empty posting list")));
        }
        covered = covered
            .checked_add(len)
            .filter(|&c| c <= rows)
            .ok_or_else(|| {
                malformed(
                    label,
                    format!("column {col} postings cover more than {rows} rows"),
                )
            })?;
    }
    if covered != rows {
        return Err(malformed(
            label,
            format!("column {col} postings cover {covered} rows, expected {rows}"),
        ));
    }
    if pos != blob.len() {
        return Err(malformed(
            label,
            format!("column {col} trailing directory bytes"),
        ));
    }
    Ok(())
}

/// Walks all cells blobs of a relation in lockstep, row by row, verifying
/// varint well-formedness, exact stream consumption, the constant
/// namespace of every cell, and strict lexicographic row order — without
/// allocating more than two `arity`-sized scratch rows. After this pass
/// the lazy decoders in `wdpt_model::columnar` are total.
fn validate_cells_streams(
    raw: &[u8],
    columns: &[ColumnSlices],
    rows: usize,
    spaces: &SpaceTable,
    label: &str,
) -> Result<(), StoreError> {
    let arity = columns.len();
    if arity == 0 {
        return Ok(());
    }
    let blobs: Vec<&[u8]> = columns.iter().map(|c| &raw[c.cells.clone()]).collect();
    let mut cursors = vec![0usize; arity];
    let mut acc = vec![0i64; arity];
    let mut prev_row: Vec<u32> = Vec::with_capacity(arity);
    let mut cur = vec![0u32; arity];
    for row in 0..rows {
        for col in 0..arity {
            let delta = read_uvarint(blobs[col], &mut cursors[col]).ok_or_else(|| {
                malformed(
                    label,
                    format!("column {col} cells stream truncated at row {row}"),
                )
            })?;
            let v = acc[col].checked_add(unzigzag(delta)).filter(|&v| {
                (0..=i64::from(u32::MAX)).contains(&v)
            });
            let v = v.ok_or_else(|| {
                malformed(
                    label,
                    format!("column {col} cell out of the u32 id space at row {row}"),
                )
            })?;
            let id = v as u32;
            if !spaces.is(id, SymbolSpace::Const) {
                return Err(malformed(
                    label,
                    format!("column {col} holds id {id}, which is not a constant"),
                ));
            }
            acc[col] = v;
            cur[col] = id;
        }
        if row > 0 {
            match prev_row.as_slice().cmp(cur.as_slice()) {
                std::cmp::Ordering::Less => {}
                std::cmp::Ordering::Equal => {
                    return Err(malformed(label, "duplicate tuple in sorted block"))
                }
                std::cmp::Ordering::Greater => {
                    return Err(malformed(label, "tuple block is not sorted"))
                }
            }
        }
        prev_row.clear();
        prev_row.extend_from_slice(&cur);
    }
    for (col, cursor) in cursors.iter().enumerate() {
        if *cursor != blobs[col].len() {
            return Err(malformed(
                label,
                format!("column {col} trailing bytes in cells blob"),
            ));
        }
    }
    Ok(())
}

/// Deep verification beyond what loading checks: forces every lazy
/// relation, cross-checks all posting lists against the tuple block, and
/// (for lazy relations) compares the serialized key directories against
/// the derived indexes. `wdpt-store verify` runs this so the offline tool
/// catches the one class of forgery the zero-copy load path admits —
/// internally-consistent key directories that do not match the cells.
pub fn verify_database_deep(db: &Database) -> Result<(), StoreError> {
    for (pred, rel) in db.relations() {
        let label = format!("relation (pred id {})", pred.0);
        // Capture what the snapshot *claims* — the serialized directories —
        // before forcing anything. `scan_serialized_posting_lens` reads the
        // raw bytes whenever columnar backing exists, even after a query
        // already materialized tuples or decoded an index, so a forged
        // directory cannot hide behind a prior decode.
        let mut dirs: Vec<Vec<(Const, u32)>> = Vec::new();
        for col in 0..rel.arity() {
            let mut dir = Vec::new();
            if !rel.scan_serialized_posting_lens(col, |c, n| dir.push((c, n))) {
                break; // owned relation: nothing serialized to cross-check
            }
            dirs.push(dir);
        }
        rel.verify_deep().map_err(|detail| malformed(&label, detail))?;
        for (col, dir) in dirs.into_iter().enumerate() {
            let idx = rel
                .built_column_index(col)
                .ok_or_else(|| malformed(&label, "deep verify left an index unbuilt"))?;
            if dir.len() != idx.len()
                || dir
                    .iter()
                    .any(|(c, n)| idx.get(c).map(Vec::len) != Some(*n as usize))
            {
                return Err(malformed(
                    &label,
                    format!("column {col} key directory disagrees with the cells"),
                ));
            }
        }
    }
    Ok(())
}

/// Reads and decodes a snapshot from any reader.
pub fn read_snapshot<R: Read>(r: &mut R) -> Result<(Interner, Database), StoreError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    decode_snapshot(&bytes)
}

/// Loads a snapshot file: one `File::read` of the whole file into a shared
/// buffer, then [`decode_snapshot_shared`] — for v2 files the relations
/// keep borrowing that buffer, so this is the zero-copy cold-start path.
pub fn load_snapshot(path: &Path) -> Result<(Interner, Database), StoreError> {
    let _g = span!("store.load_snapshot");
    let bytes: Arc<[u8]> = std::fs::read(path)?.into();
    decode_snapshot_shared(&bytes)
}

/// Walks a snapshot's sections — verifying magic, version, and every CRC —
/// and returns a summary **without** materializing the database. This is
/// `wdpt-store inspect`; [`decode_snapshot`] (used by `verify`) adds the
/// full structural validation on top.
pub fn inspect_snapshot(bytes: &[u8]) -> Result<SnapshotSummary, StoreError> {
    let mut r = Reader::new(bytes);
    let version = read_magic_version(&mut r)?;
    let section = read_section(&mut r, "header")?;
    if section.tag == TAG_DELTA_HEADER {
        return Err(malformed(
            "header",
            "file is a delta snapshot; apply it to its base first (wdpt-store apply)",
        ));
    }
    expect_tag(&section, TAG_HEADER, "header")?;
    let header = parse_header(section.payload, version)?;

    let section = read_section(&mut r, "dictionary")?;
    let dict_bytes = section.payload.len();
    let symbols = if version == VERSION_V2 {
        expect_tag(&section, TAG_DICTIONARY_V2, "dictionary")?;
        let count = usize::try_from(header.symbols)
            .ok()
            .filter(|&n| u32::try_from(n).is_ok())
            .ok_or_else(|| malformed("dictionary", "symbol count exceeds u32 id space"))?;
        parse_dictionary_v2(section.payload, count)?
    } else {
        expect_tag(&section, TAG_DICTIONARY, "dictionary")?;
        parse_dictionary(section.payload, &header)?
    };
    // v1 dictionary cost of the same symbols: space u8 + len u32 + bytes.
    let dict_raw_bytes: u64 = symbols.iter().map(|(_, n)| 5 + n.len() as u64).sum();

    let rel_tag = if version == VERSION_V2 {
        TAG_RELATION_V2
    } else {
        TAG_RELATION
    };
    let rel_count = checked_count(
        u64::from(header.relations),
        SECTION_FRAME_BYTES as u64,
        r.remaining(),
        "header",
        "relation sections",
    )?;
    let mut relations = Vec::with_capacity(rel_count);
    for idx in 0..rel_count {
        let label = format!("relation[{idx}]");
        let section = read_section(&mut r, &label)?;
        expect_tag(&section, rel_tag, &label)?;
        let mut pr = Reader::new(section.payload);
        let pred = pr.u32(&label)?;
        let arity = pr.u32(&label)?;
        let rows = pr.u64(&label)?;
        // The uncompressed (v1) payload cost: 16-byte header, 4 bytes per
        // cell, and per column a key count u64 + (key,len) pairs + 4-byte
        // posting rows.
        let mut raw_bytes: u64 = 16 + u64::from(arity) * rows * 4;
        if version == VERSION_V2 {
            for col in 0..arity as usize {
                let _cells_bytes = pr.u64(&label)?;
                let keys = pr.u64(&label)?;
                let _dir_bytes = pr.u64(&label)?;
                let _ = col;
                raw_bytes += 8 + keys * 8 + rows * 4;
            }
        } else {
            // v1 sections *are* the raw encoding.
            raw_bytes = section.payload.len() as u64;
        }
        let name = symbols
            .get(pred as usize)
            .map(|(_, n)| n.clone())
            .unwrap_or_else(|| format!("<unknown id {pred}>"));
        relations.push(RelationSummary {
            pred,
            name,
            arity,
            rows,
            bytes: section.payload.len(),
            raw_bytes,
        });
    }
    let section = read_section(&mut r, "end")?;
    expect_tag(&section, TAG_END, "end")?;
    if r.remaining() != 0 {
        return Err(malformed("end", "trailing bytes after end section"));
    }
    Ok(SnapshotSummary {
        header,
        relations,
        bytes: bytes.len(),
        dict_bytes,
        dict_raw_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Interner, Database) {
        let mut i = Interner::new();
        let e = i.pred("edge");
        let n = i.pred("node");
        let (a, b, c) = (i.constant("a"), i.constant("b"), i.constant("c"));
        i.var("x"); // vars serialize too
        let mut db = Database::new();
        db.insert(e, vec![b, c]);
        db.insert(e, vec![a, b]);
        db.insert(n, vec![a]);
        db.insert(n, vec![c]);
        (i, db)
    }

    #[test]
    fn round_trips_a_small_database() {
        let (i, db) = sample();
        let bytes = snapshot_to_vec(&i, &db).unwrap();
        let (i2, db2) = decode_snapshot(&bytes).unwrap();
        assert_eq!(i2.len(), i.len());
        assert_eq!(db2.size(), db.size());
        assert_eq!(db2.active_domain(), db.active_domain());
        assert_eq!(db2.display(&i2), db.display(&i));
    }

    #[test]
    fn decoded_relations_have_installed_indexes() {
        let (mut i, db) = sample();
        let bytes = snapshot_to_vec(&i, &db).unwrap();
        let (_, db2) = decode_snapshot(&bytes).unwrap();
        let e = i.pred("edge");
        let rel = db2.relation(e).unwrap();
        for col in 0..rel.arity() {
            assert!(
                rel.built_column_index(col).is_some(),
                "column {col} not installed"
            );
        }
        let a = i.constant("a");
        assert_eq!(rel.posting_len(0, a), 1);
        assert_eq!(rel.matching(&[Some(a), None]).count(), 1);
    }

    #[test]
    fn encoding_is_deterministic_and_idempotent() {
        let (i, db) = sample();
        let bytes = snapshot_to_vec(&i, &db).unwrap();
        assert_eq!(bytes, snapshot_to_vec(&i, &db).unwrap());
        let (i2, db2) = decode_snapshot(&bytes).unwrap();
        assert_eq!(
            bytes,
            snapshot_to_vec(&i2, &db2).unwrap(),
            "re-encode differs"
        );
    }

    #[test]
    fn inspect_reports_sections() {
        let (i, db) = sample();
        let bytes = snapshot_to_vec(&i, &db).unwrap();
        let summary = inspect_snapshot(&bytes).unwrap();
        assert_eq!(summary.header.version, VERSION);
        assert_eq!(summary.header.symbols, i.len() as u64);
        assert_eq!(summary.header.tuples, 4);
        assert_eq!(summary.relations.len(), 2);
        assert!(summary
            .relations
            .iter()
            .any(|r| r.name == "edge" && r.arity == 2));
        assert_eq!(summary.bytes, bytes.len());
    }

    #[test]
    fn empty_database_round_trips() {
        let i = Interner::new();
        let db = Database::new();
        let bytes = snapshot_to_vec(&i, &db).unwrap();
        let (i2, db2) = decode_snapshot(&bytes).unwrap();
        assert!(i2.is_empty());
        assert_eq!(db2.size(), 0);
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn over_wide_values_error_instead_of_truncating() {
        // A >u32::MAX quantity can't be materialized in a test, so the
        // checked-narrowing helper that guards every u32 wire field is
        // exercised directly: pre-fix code wrote `value as u32` here and
        // produced a corrupt-but-valid-CRC snapshot.
        let too_many = u32::MAX as usize + 1;
        match len_u32(too_many, "relation row count") {
            Err(StoreError::TooLarge { what, value }) => {
                assert_eq!(what, "relation row count");
                assert_eq!(value, too_many as u64);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        assert_eq!(len_u32(u32::MAX as usize, "x").unwrap(), u32::MAX);
        let msg = len_u32(too_many, "posting length").unwrap_err().to_string();
        assert!(msg.contains("posting length"), "unhelpful message: {msg}");
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let (i, db) = sample();
        let mut bytes = snapshot_to_vec(&i, &db).unwrap();
        let mut wrong = bytes.clone();
        wrong[0] ^= 0xFF;
        assert!(matches!(decode_snapshot(&wrong), Err(StoreError::BadMagic)));
        bytes[8] = 0xFE; // version little-endian low byte
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(StoreError::UnsupportedVersion(_))
        ));
    }
}
