//! # wdpt-store — persistent snapshot storage for WDPT databases
//!
//! Text datasets (N-Triples or the facts format) parse in linear time but
//! pay string tokenization, escape decoding, interning, and index builds on
//! every cold start. This crate adds a persistent binary **snapshot** of an
//! `(Interner, Database)` pair so a server restart is a sequential read +
//! validation pass instead of a re-parse:
//!
//! * [`format`] — the versioned on-disk layout: dictionary-coded term
//!   table, per-relation sorted column-major tuple blocks with serialized
//!   posting indexes (so [`wdpt_model::Relation::matching`] works with zero
//!   index rebuild), and a CRC-32 per section so corruption surfaces as a
//!   typed [`StoreError`] instead of garbage answers.
//! * [`delta`] — incremental **delta snapshots**: insert-only diffs
//!   chained to their base by content hash, applied by merging sorted runs
//!   and remapping (not rebuilding) posting indexes, so a small update is
//!   proportional to its size instead of the database's.
//! * [`loader`] — a parallel bulk loader that streams text through scoped
//!   parser threads (std-only) with **two-pass parallel interning**:
//!   workers intern into per-worker local dictionaries, the union merges
//!   into the global interner in canonical `(namespace, name)` order, and
//!   a second parallel pass remaps tuples to global ids.
//! * [`replog`] — the primary's append-only **replication log** over a
//!   delta chain: crash-safe two-step appends (delta file before index
//!   record), hash-keyed suffix extraction for subscribing followers, and
//!   the chain-directory scanner behind `verify --chain`.
//! * [`text`] — the serial streaming text loader (same dialects, one
//!   thread, used as the fallback path and as the loader's test oracle).
//! * `wdpt-store` (binary) — `build` / `verify` / `inspect` / `gen-music`
//!   / `gen-synth`.
//!
//! Snapshots are byte-deterministic for a given `(Interner, Database)`
//! pair, and the canonical merge makes bulk-load interning a pure function
//! of the input's symbol set, so `build` from the same input yields
//! identical files at **any** `--threads` setting.

pub mod crc;
pub mod delta;
pub mod format;
pub mod loader;
pub mod replog;
pub mod text;

pub use crc::{crc32, Crc32};
pub use delta::{
    apply_delta, decode_delta, decode_with_deltas, delta_to_vec, load_with_deltas, save_delta,
    Delta, DeltaHeader,
};
pub use format::{
    content_hash, decode_snapshot, decode_snapshot_shared, inspect_snapshot, load_snapshot,
    peek_version, read_snapshot, save_snapshot, save_snapshot_versioned, snapshot_to_vec,
    snapshot_to_vec_v2, snapshot_to_vec_versioned, verify_database_deep, write_snapshot,
    RelationSummary, SnapshotHeader, SnapshotSummary, StoreError, MAGIC, VERSION, VERSION_V2,
};
pub use loader::{bulk_load, bulk_load_path, LoadOptions, LoadReport};
pub use replog::{head_hex, parse_head_hex, scan_chain_dir, ChainScan, LogEntry, ReplLog};
pub use text::{load_text_database, read_text_database};
