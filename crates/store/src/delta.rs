//! Incremental **delta snapshots**: insert-only diffs chained onto a base
//! `WDPTSNAP` file.
//!
//! A delta reuses the container of the full format — the same magic,
//! version, and CRC-framed sections — but opens with a *delta header*
//! (tag `0x04`) instead of a snapshot header, so a delta can never be
//! mistaken for a full snapshot (and vice versa):
//!
//! | tag  | section        | payload                                                        |
//! |------|----------------|----------------------------------------------------------------|
//! | 0x04 | delta header   | base_hash u64 · base_symbols u64 · symbols u64 · fresh u64 · relations u32 · inserted u64 |
//! | 0x02 | dictionary     | the `symbols − base_symbols` **appended** symbols, id order    |
//! | 0x05 | relation delta | pred u32 · arity u32 · rows u64 · column-major cells (sorted)  |
//! | 0xFF | end            | empty                                                          |
//!
//! `base_hash` is the FNV-1a-64 [`content_hash`] of the immediate
//! predecessor *file* — the base snapshot for the first delta, the
//! previous delta for every later one — so a chain is verified purely
//! from file bytes, with no registry. Deltas are **insert-only**: symbols
//! are appended (existing ids never move, which is what keeps serve-side
//! plan caches valid across a reload) and tuples are added, never
//! removed. Applying merges each relation's sorted base run with the
//! sorted insertion run in one pass and *remaps* any already-built
//! posting indexes through the merge positions instead of rebuilding
//! them; relations the delta does not touch are moved into the result
//! wholesale, indexes and all.

use crate::format::{
    checked_count, content_hash, decode_snapshot, encode_dictionary, expect_tag, len_u32,
    malformed, parse_dictionary_entries, push_section, read_magic_version, read_section, Reader,
    SpaceTable, StoreError, MAGIC, TAG_DELTA_HEADER, TAG_DICTIONARY, TAG_END, TAG_HEADER,
    TAG_RELATION_DELTA, VERSION,
};
use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use wdpt_model::{Const, Database, Interner, Pred, Relation, SymbolSpace};
use wdpt_obs::{counter, span};

/// The parsed delta-header section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaHeader {
    /// Format version of the file.
    pub version: u32,
    /// [`content_hash`] of the predecessor file this delta applies to.
    pub base_hash: u64,
    /// Symbol count of the predecessor's interner.
    pub base_symbols: u64,
    /// Symbol count after applying (base + appended).
    pub symbols: u64,
    /// The fresh-name counter after applying.
    pub fresh_counter: u64,
    /// Number of relation-delta sections.
    pub relations: u32,
    /// Total inserted tuples across relation deltas.
    pub inserted: u64,
}

/// One relation's insertion run.
#[derive(Debug)]
struct RelationDelta {
    pred: Pred,
    arity: usize,
    tuples: Vec<Box<[Const]>>,
}

/// A fully parsed (but not yet applied) delta file.
#[derive(Debug)]
pub struct Delta {
    /// The delta header.
    pub header: DeltaHeader,
    /// Appended symbols, in id order starting at `header.base_symbols`.
    appended: Vec<(SymbolSpace, String)>,
    /// Per-relation insertion runs, predicates strictly ascending.
    relations: Vec<RelationDelta>,
}

impl Delta {
    /// Total inserted tuples (mirrors `header.inserted`).
    pub fn inserted(&self) -> u64 {
        self.header.inserted
    }
}

/// Serializes the difference between a base `(Interner, Database)` pair and
/// an updated one as a delta chained to `base_hash` (the [`content_hash`]
/// of the predecessor *file* the base pair was decoded from).
///
/// The updated interner must extend the base interner (same symbols, in
/// order, possibly more appended), and the updated database must be an
/// insert-only extension of the base — a removed tuple, removed relation,
/// or changed arity is a typed error, because the delta format cannot
/// express it.
pub fn delta_to_vec(
    base_hash: u64,
    base_interner: &Interner,
    base_db: &Database,
    new_interner: &Interner,
    new_db: &Database,
) -> Result<Vec<u8>, StoreError> {
    let _g = span!("store.delta.encode");
    if new_interner.len() < base_interner.len()
        || !base_interner
            .symbols()
            .eq(new_interner.symbols().take(base_interner.len()))
    {
        return Err(malformed(
            "delta",
            "the updated interner does not extend the base interner \
             (existing ids must stay put for a delta to apply)",
        ));
    }

    // Every base relation must survive, at the same arity, with all of its
    // tuples — deltas are insert-only.
    for (pred, _) in base_db.relations() {
        if new_db.relation(pred).is_none() {
            return Err(malformed(
                "delta",
                format!(
                    "relation for predicate id {} was removed; deltas are insert-only",
                    pred.0
                ),
            ));
        }
    }

    let mut rel_order: Vec<(Pred, &Relation)> = new_db.relations().collect();
    rel_order.sort_by_key(|(p, _)| *p);

    let mut diffs: Vec<(Pred, usize, Vec<&[Const]>)> = Vec::new();
    let mut inserted: u64 = 0;
    for (pred, new_rel) in rel_order {
        let mut new_rows: Vec<&[Const]> = new_rel.tuples().collect();
        new_rows.sort_unstable();
        let added: Vec<&[Const]> = match base_db.relation(pred) {
            None => new_rows,
            Some(base_rel) => {
                if base_rel.arity() != new_rel.arity() {
                    return Err(malformed(
                        "delta",
                        format!(
                            "predicate id {} changed arity ({} to {}); deltas are insert-only",
                            pred.0,
                            base_rel.arity(),
                            new_rel.arity()
                        ),
                    ));
                }
                let mut base_rows: Vec<&[Const]> = base_rel.tuples().collect();
                base_rows.sort_unstable();
                let mut added = Vec::new();
                let mut bi = 0;
                for row in new_rows {
                    if bi < base_rows.len() && base_rows[bi] == row {
                        bi += 1;
                    } else {
                        added.push(row);
                    }
                }
                if bi != base_rows.len() {
                    return Err(malformed(
                        "delta",
                        format!(
                            "a tuple was removed from predicate id {}; deltas are insert-only",
                            pred.0
                        ),
                    ));
                }
                added
            }
        };
        if !added.is_empty() {
            inserted += added.len() as u64;
            diffs.push((pred, new_rel.arity(), added));
        }
    }

    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());

    let mut header = Vec::with_capacity(8 * 4 + 4 + 8);
    header.extend_from_slice(&base_hash.to_le_bytes());
    header.extend_from_slice(&(base_interner.len() as u64).to_le_bytes());
    header.extend_from_slice(&(new_interner.len() as u64).to_le_bytes());
    header.extend_from_slice(&new_interner.fresh_counter().to_le_bytes());
    header.extend_from_slice(&len_u32(diffs.len(), "delta relation count")?.to_le_bytes());
    header.extend_from_slice(&inserted.to_le_bytes());
    push_section(&mut out, TAG_DELTA_HEADER, &header);

    push_section(
        &mut out,
        TAG_DICTIONARY,
        &encode_dictionary(new_interner.symbols().skip(base_interner.len()))?,
    );

    for (pred, arity, rows) in diffs {
        let mut payload = Vec::with_capacity(16 + rows.len() * arity * 4);
        payload.extend_from_slice(&pred.0.to_le_bytes());
        payload.extend_from_slice(&len_u32(arity, "relation arity")?.to_le_bytes());
        payload.extend_from_slice(&(rows.len() as u64).to_le_bytes());
        for col in 0..arity {
            for t in &rows {
                payload.extend_from_slice(&t[col].0.to_le_bytes());
            }
        }
        push_section(&mut out, TAG_RELATION_DELTA, &payload);
    }

    push_section(&mut out, TAG_END, &[]);
    counter!("store.delta.bytes_encoded").add(out.len() as u64);
    counter!("store.delta.encodes").add(1);
    Ok(out)
}

/// Parses a delta file, verifying magic, version, every CRC, and all
/// structure that can be checked without the base (sortedness, counts,
/// ascending predicates). Cell namespaces are validated at apply time,
/// when the combined symbol table exists.
pub fn decode_delta(bytes: &[u8]) -> Result<Delta, StoreError> {
    let _g = span!("store.delta.decode");
    let mut r = Reader::new(bytes);
    let version = read_magic_version(&mut r)?;

    let section = read_section(&mut r, "delta header")?;
    if section.tag == TAG_HEADER {
        return Err(malformed(
            "delta header",
            "file is a full snapshot, not a delta (wdpt-store verify reads it directly)",
        ));
    }
    expect_tag(&section, TAG_DELTA_HEADER, "delta header")?;
    let mut hr = Reader::new(section.payload);
    let header = DeltaHeader {
        version,
        base_hash: hr.u64("delta header")?,
        base_symbols: hr.u64("delta header")?,
        symbols: hr.u64("delta header")?,
        fresh_counter: hr.u64("delta header")?,
        relations: hr.u32("delta header")?,
        inserted: hr.u64("delta header")?,
    };
    if hr.remaining() != 0 {
        return Err(malformed("delta header", "trailing bytes"));
    }
    if header.symbols < header.base_symbols {
        return Err(malformed(
            "delta header",
            "symbol count shrinks (deltas are append-only)",
        ));
    }
    let appended_count = usize::try_from(header.symbols - header.base_symbols)
        .ok()
        .filter(|_| u32::try_from(header.symbols).is_ok())
        .ok_or_else(|| malformed("delta header", "symbol count exceeds u32 id space"))?;

    let section = read_section(&mut r, "dictionary")?;
    expect_tag(&section, TAG_DICTIONARY, "dictionary")?;
    let appended = parse_dictionary_entries(section.payload, appended_count)?;

    // Each relation-delta section costs at least its framing; bound the
    // declared count against the bytes present before sizing anything.
    let rel_count = checked_count(
        u64::from(header.relations),
        crate::format::SECTION_FRAME_BYTES as u64,
        r.remaining(),
        "delta header",
        "relation sections",
    )?;
    let mut relations: Vec<RelationDelta> = Vec::with_capacity(rel_count);
    let mut total: u64 = 0;
    for idx in 0..rel_count {
        let label = format!("relation delta[{idx}]");
        let label = label.as_str();
        let section = read_section(&mut r, label)?;
        expect_tag(&section, TAG_RELATION_DELTA, label)?;
        let mut pr = Reader::new(section.payload);
        let pred = Pred(pr.u32(label)?);
        if let Some(prev) = relations.last() {
            if prev.pred >= pred {
                return Err(malformed(label, "predicates not strictly ascending"));
            }
        }
        let arity_u32 = pr.u32(label)?;
        let rows_u64 = pr.u64(label)?;
        if rows_u64 == 0 {
            return Err(malformed(label, "empty relation delta"));
        }
        // Bound both counts against the remaining bytes *before* sizing
        // allocations from them (rows ≥ 1 here, so 4 bytes per column is
        // a hard floor; each row costs 4·arity cell bytes).
        let arity = checked_count(u64::from(arity_u32), 4, pr.remaining(), label, "columns")?;
        if arity == 0 && rows_u64 > 1 {
            return Err(malformed(label, "nullary relation with more than one row"));
        }
        let rows = checked_count(
            rows_u64,
            4 * (arity as u64).max(1),
            pr.remaining(),
            label,
            "rows",
        )?;
        let cells = arity
            .checked_mul(rows)
            .and_then(|c| c.checked_mul(4))
            .ok_or_else(|| malformed(label, "cell count overflow"))?;
        if pr.remaining() < cells {
            return Err(StoreError::Truncated {
                section: label.to_string(),
            });
        }
        let mut columns: Vec<&[u8]> = Vec::with_capacity(arity);
        for _ in 0..arity {
            columns.push(pr.take(rows * 4, label)?);
        }
        let mut tuples: Vec<Box<[Const]>> = Vec::with_capacity(rows);
        for row in 0..rows {
            let mut tuple = Vec::with_capacity(arity);
            for c in &columns {
                let cell = c
                    .get(row * 4..row * 4 + 4)
                    .and_then(crate::format::le_u32)
                    .ok_or_else(|| malformed(label, "misaligned cell bytes"))?;
                tuple.push(Const(cell));
            }
            tuples.push(tuple.into_boxed_slice());
        }
        if let Some(w) = tuples.windows(2).find(|w| w[0] >= w[1]) {
            let detail = if w[0] == w[1] {
                "duplicate tuple in sorted block"
            } else {
                "tuple block is not sorted"
            };
            return Err(malformed(label, detail));
        }
        if pr.remaining() != 0 {
            return Err(malformed(label, "trailing bytes"));
        }
        total += rows_u64;
        relations.push(RelationDelta {
            pred,
            arity,
            tuples,
        });
    }
    if total != header.inserted {
        return Err(malformed(
            "delta header",
            format!(
                "header claims {} inserted tuples, sections hold {total}",
                header.inserted
            ),
        ));
    }

    let section = read_section(&mut r, "end")?;
    expect_tag(&section, TAG_END, "end")?;
    if !section.payload.is_empty() {
        return Err(malformed("end", "non-empty end section"));
    }
    if r.remaining() != 0 {
        return Err(malformed("end", "trailing bytes after end section"));
    }
    Ok(Delta {
        header,
        appended,
        relations,
    })
}

/// Merges one sorted insertion run into a relation, carrying built posting
/// indexes across by *remapping* row positions through the merge instead of
/// rebuilding from the cells. Columns whose index was never built stay
/// lazy.
fn merge_relation(
    label: &str,
    base: Relation,
    add: Vec<Box<[Const]>>,
) -> Result<Relation, StoreError> {
    let (arity, base_tuples, base_indexes) = base.into_parts();
    let n = base_tuples.len();
    let m = add.len();
    len_u32(n + m, "merged row count")?;

    let mut merged: Vec<Box<[Const]>> = Vec::with_capacity(n + m);
    // New position of base row i / insertion row j after the merge. Both
    // arrays are monotonically increasing, which is what lets posting lists
    // be remapped without re-sorting.
    let mut base_new = vec![0u32; n];
    let mut add_new = vec![0u32; m];
    {
        let mut b = base_tuples.into_iter().enumerate().peekable();
        let mut a = add.into_iter().enumerate().peekable();
        loop {
            let take_base = match (b.peek(), a.peek()) {
                (Some((_, bt)), Some((_, at))) => match bt.cmp(at) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Greater => false,
                    std::cmp::Ordering::Equal => {
                        return Err(malformed(
                            label,
                            "delta inserts a tuple the base already holds",
                        ))
                    }
                },
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (idx, t) = if take_base {
                b.next().expect("peeked")
            } else {
                a.next().expect("peeked")
            };
            if merged.last().is_some_and(|p| **p >= *t) {
                // The base relation's run was not sorted — possible only if
                // the relation was mutated outside the snapshot paths.
                return Err(malformed(label, "base relation run is not sorted"));
            }
            // `len_u32(n + m)` above bounds every merged position, so this
            // checked conversion cannot fail — but keep it checked rather
            // than an `as` cast so a future refactor that drops the guard
            // turns into a typed error, not a silent row-id wrap.
            let pos = u32::try_from(merged.len())
                .map_err(|_| malformed(label, "merged row position overflows u32"))?;
            if take_base {
                base_new[idx] = pos;
            } else {
                add_new[idx] = pos;
            }
            merged.push(t);
        }
    }

    // Remap whichever indexes were built; leave never-built columns lazy.
    let mut rebuilt: Vec<(usize, HashMap<Const, Vec<u32>>)> = Vec::new();
    for (col, built) in base_indexes.into_iter().enumerate() {
        let Some(mut index) = built else { continue };
        for rows in index.values_mut() {
            for r in rows.iter_mut() {
                *r = base_new[*r as usize];
            }
        }
        // Collect the insertion rows per key, then splice each key's two
        // ascending lists (base positions and insertion positions interleave
        // in general).
        let mut fresh: HashMap<Const, Vec<u32>> = HashMap::new();
        for &row in &add_new {
            let key = merged[row as usize][col];
            fresh.entry(key).or_default().push(row);
        }
        for (key, new_rows) in fresh {
            let slot = index.entry(key).or_default();
            let old = std::mem::take(slot);
            *slot = merge_ascending(old, new_rows);
        }
        rebuilt.push((col, index));
    }

    let mut rel = Relation::from_sorted(arity, merged);
    for (col, index) in rebuilt {
        rel.install_column_index(col, index);
    }
    Ok(rel)
}

/// Merges two strictly ascending row lists into one.
fn merge_ascending(a: Vec<u32>, b: Vec<u32>) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ai, mut bi) = (0, 0);
    while ai < a.len() && bi < b.len() {
        if a[ai] < b[bi] {
            out.push(a[ai]);
            ai += 1;
        } else {
            out.push(b[bi]);
            bi += 1;
        }
    }
    out.extend_from_slice(&a[ai..]);
    out.extend_from_slice(&b[bi..]);
    out
}

/// Applies one parsed delta to an `(Interner, Database)` pair, consuming
/// the database and returning the merged one. The interner is extended in
/// place (append-only, so ids held by callers stay valid). Chain-hash
/// verification is the caller's job ([`decode_with_deltas`] does it); this
/// function checks everything *structural*: the symbol-count anchor, that
/// appended symbols are genuinely new, and every cell's namespace.
pub fn apply_delta(
    interner: &mut Interner,
    db: Database,
    delta: Delta,
) -> Result<Database, StoreError> {
    let _g = span!("store.delta.apply");
    if interner.len() as u64 != delta.header.base_symbols {
        return Err(malformed(
            "delta header",
            format!(
                "delta expects a base interner with {} symbols, found {}",
                delta.header.base_symbols,
                interner.len()
            ),
        ));
    }
    for (j, (space, name)) in delta.appended.iter().enumerate() {
        let expected = delta.header.base_symbols as usize + j;
        let id = match space {
            SymbolSpace::Var => interner.var(name).0,
            SymbolSpace::Const => interner.constant(name).0,
            SymbolSpace::Pred => interner.pred(name).0,
        };
        if id as usize != expected {
            // Roll the partial append back before erroring so the caller's
            // interner is untouched on failure.
            interner.truncate(delta.header.base_symbols as usize);
            return Err(malformed(
                "dictionary",
                format!("appended symbol {name:?} is already interned (id {id})"),
            ));
        }
    }
    interner.raise_fresh_counter(delta.header.fresh_counter);
    let spaces = SpaceTable::from_interner(interner);

    let mut rels: BTreeMap<Pred, Relation> = db.into_relations().collect();
    let mut merged_count: u64 = 0;
    for (idx, rd) in delta.relations.into_iter().enumerate() {
        let label = format!("relation delta[{idx}]");
        let label = label.as_str();
        if !spaces.is(rd.pred.0, SymbolSpace::Pred) {
            return Err(malformed(
                label,
                format!("id {} is not a predicate", rd.pred.0),
            ));
        }
        for t in &rd.tuples {
            for (col, cell) in t.iter().enumerate() {
                if !spaces.is(cell.0, SymbolSpace::Const) {
                    return Err(malformed(
                        label,
                        format!("column {col} holds id {}, which is not a constant", cell.0),
                    ));
                }
            }
        }
        let rel = match rels.remove(&rd.pred) {
            None => Relation::from_sorted(rd.arity, rd.tuples),
            Some(base_rel) => {
                if base_rel.arity() != rd.arity {
                    return Err(malformed(
                        label,
                        format!(
                            "arity {} does not match the base relation's {}",
                            rd.arity,
                            base_rel.arity()
                        ),
                    ));
                }
                merge_relation(label, base_rel, rd.tuples)?
            }
        };
        merged_count += 1;
        rels.insert(rd.pred, rel);
    }

    counter!("store.delta.relations_merged").add(merged_count);
    counter!("store.delta.tuples_applied").add(delta.header.inserted);
    Ok(Database::from_sorted(rels.into_iter().collect()))
}

/// Decodes a base snapshot and applies a chain of deltas to it, verifying
/// that each delta's `base_hash` matches the [`content_hash`] of the file
/// immediately before it in the chain.
pub fn decode_with_deltas(
    base: &[u8],
    deltas: &[Vec<u8>],
) -> Result<(Interner, Database), StoreError> {
    let _g = span!("store.decode_with_deltas");
    let (mut interner, mut db) = decode_snapshot(base)?;
    let mut expected = content_hash(base);
    for (i, bytes) in deltas.iter().enumerate() {
        let delta = decode_delta(bytes)?;
        if delta.header.base_hash != expected {
            return Err(malformed(
                "delta header",
                format!(
                    "delta {i} was built against a different predecessor \
                     (expects hash {:016x}, chain has {:016x})",
                    delta.header.base_hash, expected
                ),
            ));
        }
        db = apply_delta(&mut interner, db, delta)?;
        expected = content_hash(bytes);
        counter!("store.delta.applied").add(1);
    }
    Ok((interner, db))
}

/// [`decode_with_deltas`] over files.
pub fn load_with_deltas<P: AsRef<Path>>(
    base: &Path,
    deltas: &[P],
) -> Result<(Interner, Database), StoreError> {
    let _g = span!("store.load_with_deltas");
    let base_bytes = std::fs::read(base)?;
    let mut delta_bytes = Vec::with_capacity(deltas.len());
    for p in deltas {
        delta_bytes.push(std::fs::read(p.as_ref())?);
    }
    decode_with_deltas(&base_bytes, &delta_bytes)
}

/// Writes already-encoded delta bytes to a file atomically (temp file +
/// rename, mirroring [`crate::format::save_snapshot`]).
pub fn save_delta(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("delta.tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    counter!("store.delta.saves").add(1);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::snapshot_to_vec;

    fn base() -> (Interner, Database) {
        let mut i = Interner::new();
        let e = i.pred("edge");
        let n = i.pred("node");
        let (a, b, c) = (i.constant("a"), i.constant("b"), i.constant("c"));
        let mut db = Database::new();
        db.insert(e, vec![a, b]);
        db.insert(e, vec![b, c]);
        db.insert(n, vec![a]);
        (i, db)
    }

    /// Decode the base through the snapshot round trip so relations arrive
    /// sorted with installed indexes, exactly as the serve reload path sees
    /// them.
    fn decoded_base() -> (Vec<u8>, Interner, Database) {
        let (i, db) = base();
        let bytes = snapshot_to_vec(&i, &db).unwrap();
        let (i2, db2) = decode_snapshot(&bytes).unwrap();
        (bytes, i2, db2)
    }

    fn extend(i: &Interner, db: &Database) -> (Interner, Database) {
        let mut ni = i.clone();
        let mut ndb = db.clone();
        let e = ni.pred("edge");
        let d = ni.constant("d");
        let lbl = ni.pred("label");
        let c = ni.constant("c");
        ndb.insert(e, vec![c, d]);
        ndb.insert(lbl, vec![d]);
        (ni, ndb)
    }

    #[test]
    fn delta_round_trips_and_chains() {
        let (base_bytes, i, db) = decoded_base();
        let (ni, ndb) = extend(&i, &db);
        let delta = delta_to_vec(content_hash(&base_bytes), &i, &db, &ni, &ndb).unwrap();

        let (ri, rdb) = decode_with_deltas(&base_bytes, std::slice::from_ref(&delta)).unwrap();
        assert_eq!(ri.len(), ni.len());
        assert_eq!(rdb.size(), ndb.size());
        assert_eq!(rdb.display(&ri), ndb.display(&ni));

        // The applied result re-encodes to the same bytes as a full
        // snapshot of the updated pair: merge + remap is exact.
        assert_eq!(
            snapshot_to_vec(&ri, &rdb).unwrap(),
            snapshot_to_vec(&ni, &ndb).unwrap()
        );

        // A second delta chains onto the first via its file hash.
        let (ni2, ndb2) = {
            let mut i2 = ri.clone();
            let mut db2 = rdb.clone();
            let e = i2.pred("edge");
            let z = i2.constant("z");
            let a = i2.constant("a");
            db2.insert(e, vec![z, a]);
            (i2, db2)
        };
        let delta2 = delta_to_vec(content_hash(&delta), &ri, &rdb, &ni2, &ndb2).unwrap();
        let (ci, cdb) = decode_with_deltas(&base_bytes, &[delta.clone(), delta2.clone()]).unwrap();
        assert_eq!(cdb.size(), ndb2.size());
        assert_eq!(cdb.display(&ci), ndb2.display(&ni2));

        // Out-of-order application fails the chain check.
        let err = decode_with_deltas(&base_bytes, &[delta2, delta]).unwrap_err();
        assert!(
            err.to_string().contains("different predecessor"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn merged_relations_keep_remapped_indexes() {
        let (base_bytes, mut i, db) = decoded_base();
        let (ni, ndb) = extend(&i, &db);
        let delta = delta_to_vec(content_hash(&base_bytes), &i, &db, &ni, &ndb).unwrap();
        let (ri, rdb) = decode_with_deltas(&base_bytes, &[delta]).unwrap();
        drop(ri);

        // The merged `edge` relation kept its prebuilt indexes (remapped,
        // not rebuilt lazily): both columns report built, and the postings
        // answer correctly for old and new tuples alike.
        let e = i.pred("edge");
        let rel = rdb.relation(e).unwrap();
        for col in 0..rel.arity() {
            assert!(
                rel.built_column_index(col).is_some(),
                "column {col} index was dropped by the merge"
            );
        }
        let c = i.constant("c");
        assert_eq!(rel.posting_len(0, c), 1, "new tuple not indexed");
        assert_eq!(rel.posting_len(1, c), 1, "old tuple lost from index");
        assert_eq!(rel.matching(&[Some(c), None]).count(), 1);
        assert_eq!(rel.len(), 3);
    }

    #[test]
    fn deletions_and_arity_changes_are_rejected_at_encode() {
        let (base_bytes, mut i, db) = decoded_base();
        let h = content_hash(&base_bytes);

        // Removing a tuple.
        let shrunk = {
            let mut ndb = Database::new();
            let e = i.pred("edge");
            let (a, b) = (i.constant("a"), i.constant("b"));
            ndb.insert(e, vec![a, b]);
            let n = i.pred("node");
            ndb.insert(n, vec![a]);
            ndb
        };
        let err = delta_to_vec(h, &i, &db, &i, &shrunk).unwrap_err();
        assert!(err.to_string().contains("insert-only"), "got: {err}");

        // An interner that does not extend the base.
        let fresh = Interner::new();
        let err = delta_to_vec(h, &i, &db, &fresh, &db).unwrap_err();
        assert!(err.to_string().contains("extend"), "got: {err}");
    }

    #[test]
    fn empty_diff_encodes_and_applies_cleanly() {
        let (base_bytes, i, db) = decoded_base();
        let delta = delta_to_vec(content_hash(&base_bytes), &i, &db, &i, &db).unwrap();
        let parsed = decode_delta(&delta).unwrap();
        assert_eq!(parsed.header.relations, 0);
        assert_eq!(parsed.inserted(), 0);
        let (ri, rdb) = decode_with_deltas(&base_bytes, &[delta]).unwrap();
        assert_eq!(ri.len(), i.len());
        assert_eq!(rdb.size(), db.size());
    }

    #[test]
    fn corrupted_delta_sections_are_typed() {
        let (base_bytes, i, db) = decoded_base();
        let (ni, ndb) = extend(&i, &db);
        let good = delta_to_vec(content_hash(&base_bytes), &i, &db, &ni, &ndb).unwrap();

        // Flip a payload byte: CRC catches it.
        let mut bad = good.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        assert!(matches!(
            decode_delta(&bad),
            Err(StoreError::ChecksumMismatch { .. }) | Err(StoreError::Malformed { .. })
        ));

        // Truncation is typed too.
        let cut = &good[..good.len() - 3];
        assert!(matches!(
            decode_delta(cut),
            Err(StoreError::Truncated { .. })
        ));

        // A full snapshot fed to the delta decoder is refused with a hint,
        // and a delta fed to the full decoder likewise.
        let err = decode_delta(&base_bytes).unwrap_err();
        assert!(err.to_string().contains("full snapshot"), "got: {err}");
        let err = decode_snapshot(&good).unwrap_err();
        assert!(err.to_string().contains("delta snapshot"), "got: {err}");
    }

    #[test]
    fn wrong_base_symbol_count_is_rejected_and_interner_untouched() {
        let (base_bytes, i, db) = decoded_base();
        let (ni, ndb) = extend(&i, &db);
        let delta_bytes = delta_to_vec(content_hash(&base_bytes), &i, &db, &ni, &ndb).unwrap();
        let delta = decode_delta(&delta_bytes).unwrap();

        let mut wrong = Interner::new();
        wrong.constant("only");
        let before = wrong.len();
        let err = apply_delta(&mut wrong, Database::new(), delta).unwrap_err();
        assert!(err.to_string().contains("symbols"), "got: {err}");
        assert_eq!(wrong.len(), before, "failed apply must not grow interner");
    }
}
