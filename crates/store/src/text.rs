//! Streaming (single-threaded) text-dataset loading.
//!
//! This is the serial counterpart to [`crate::loader`]: it reads a dataset
//! line by line from any `BufRead` — never materializing the whole file as
//! one `String` — and accepts the same two formats the server does:
//!
//! * **N-Triples (lenient)** — via [`wdpt_sparql::parse_nt_line`]; one
//!   triple per line, so streaming is trivial.
//! * **facts** — `wdpt_model::parse` ground atoms, which may span lines
//!   (`edge(a,\n b)`), so lines are buffered until all parentheses outside
//!   quoted constants are balanced, then the buffer is parsed as a unit.
//!
//! The format is sniffed from the first data line: a first token that
//! contains `(` and does not open an IRI or literal means facts, anything
//! else means N-Triples. Errors carry 1-based line numbers as
//! [`StoreError::Parse`].

use crate::format::StoreError;
use std::io::BufRead;
use std::path::Path;
use wdpt_model::{Database, Interner};
use wdpt_obs::{counter, span};
use wdpt_sparql::{parse_nt_line, TripleStore};

fn parse_err(line: usize, message: impl Into<String>) -> StoreError {
    StoreError::Parse {
        line,
        message: message.into(),
    }
}

/// Reads one `\n`-terminated line as bytes and checks UTF-8 ourselves, so
/// invalid bytes surface as a line-numbered parse error instead of a bare
/// `io::Error` from `read_line`. Returns `Ok(None)` at end of input.
fn next_line<R: BufRead>(
    r: &mut R,
    buf: &mut Vec<u8>,
    line_no: usize,
) -> Result<Option<String>, StoreError> {
    buf.clear();
    let n = r.read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(None);
    }
    match std::str::from_utf8(buf) {
        Ok(s) => Ok(Some(s.to_string())),
        Err(_) => Err(parse_err(line_no, "invalid utf-8")),
    }
}

/// Is this the shape of a facts line? (First token contains `(` and does
/// not open an IRI or literal — `triple(a, b, c).` would otherwise scan as
/// three bare N-Triples tokens.)
fn looks_like_facts(data_line: &str) -> bool {
    let first = data_line.split_whitespace().next().unwrap_or("");
    !first.starts_with('<') && !first.starts_with('"') && first.contains('(')
}

/// Tracks paren balance across lines of facts text, ignoring parentheses
/// inside quoted constants. Used here and by the parallel loader's chunker
/// to cut facts chunks only at atom boundaries.
///
/// The scan is escape-aware: inside a quote, a backslash consumes the next
/// character, so `\"` does not close the string and `\\` does not arm an
/// escape for the character after it. Without this, a fact like
/// `p("a\")", q)` looked balanced at the `)` inside the quotes, and a chunk
/// cut there handed both halves to the parser mis-framed.
pub(crate) struct FactsBalance {
    depth: i64,
    in_quote: bool,
    /// A backslash inside a quote was seen and its escaped character has
    /// not arrived yet (it may be on the next line fed).
    escaped: bool,
}

impl FactsBalance {
    pub(crate) fn new() -> FactsBalance {
        FactsBalance {
            depth: 0,
            in_quote: false,
            escaped: false,
        }
    }

    pub(crate) fn feed(&mut self, line: &str) {
        for c in line.chars() {
            if self.escaped {
                self.escaped = false;
                continue;
            }
            match c {
                '\\' if self.in_quote => self.escaped = true,
                '"' => self.in_quote = !self.in_quote,
                '(' if !self.in_quote => self.depth += 1,
                ')' if !self.in_quote => self.depth -= 1,
                _ => {}
            }
        }
    }

    pub(crate) fn balanced(&self) -> bool {
        self.depth == 0 && !self.in_quote && !self.escaped
    }
}

/// Parses a balanced facts chunk and inserts its ground atoms.
fn flush_facts_chunk(
    interner: &mut Interner,
    db: &mut Database,
    chunk: &str,
    start_line: usize,
) -> Result<usize, StoreError> {
    if chunk.trim().is_empty() {
        return Ok(0);
    }
    let atoms = wdpt_model::parse::parse_atoms(interner, chunk).map_err(|e| {
        let line = start_line + chunk[..e.at.min(chunk.len())].matches('\n').count();
        parse_err(line, e.message)
    })?;
    let n = atoms.len();
    for atom in atoms {
        let Some(tuple) = atom.ground_tuple() else {
            return Err(parse_err(start_line, "database atoms must be ground"));
        };
        db.try_insert(atom.pred, tuple)?;
    }
    Ok(n)
}

/// Streams a text dataset from a reader into a database, sniffing the
/// format from the first data line.
pub fn read_text_database<R: BufRead>(
    interner: &mut Interner,
    r: &mut R,
) -> Result<Database, StoreError> {
    let _g = span!("store.text_load");
    let mut buf = Vec::new();
    let mut line_no = 0usize;

    // Sniff: pull lines until the first one carrying data.
    let mut first_data: Option<String> = None;
    while first_data.is_none() {
        line_no += 1;
        match next_line(r, &mut buf, line_no)? {
            None => return Ok(Database::new()), // nothing but blanks/comments
            Some(line) => {
                let t = line.trim();
                if !t.is_empty() && !t.starts_with('#') {
                    first_data = Some(line);
                }
            }
        }
    }
    let first = first_data.expect("loop exits only when set");

    if looks_like_facts(&first) {
        let mut db = Database::new();
        let mut chunk = String::new();
        let mut balance = FactsBalance::new();
        let mut chunk_start = line_no;
        let mut facts = 0usize;
        let mut line = Some(first);
        loop {
            if let Some(l) = line.take() {
                let t = l.trim();
                // Comments are only recognized between atoms; inside an
                // unbalanced atom a `#` line would be part of nothing valid
                // anyway and gets reported by the chunk parse.
                if !(balance.balanced() && (t.is_empty() || t.starts_with('#'))) {
                    if chunk.is_empty() {
                        chunk_start = line_no;
                    }
                    balance.feed(&l);
                    chunk.push_str(&l);
                    if !l.ends_with('\n') {
                        chunk.push('\n');
                    }
                    if balance.balanced() {
                        facts += flush_facts_chunk(interner, &mut db, &chunk, chunk_start)?;
                        chunk.clear();
                    }
                }
            }
            line_no += 1;
            match next_line(r, &mut buf, line_no)? {
                Some(l) => line = Some(l),
                None => break,
            }
        }
        if !chunk.trim().is_empty() {
            // Unbalanced leftovers: let the parser produce the error.
            facts += flush_facts_chunk(interner, &mut db, &chunk, chunk_start)?;
        }
        counter!("store.text.facts_loaded").add(facts as u64);
        Ok(db)
    } else {
        let mut ts = TripleStore::new();
        let mut line = Some(first);
        loop {
            if let Some(l) = line.take() {
                match parse_nt_line(&l) {
                    Ok(None) => {}
                    Ok(Some((s, p, o))) => {
                        ts.insert_str(interner, &s, &p, &o);
                    }
                    Err(e) => return Err(parse_err(line_no, e)),
                }
            }
            line_no += 1;
            match next_line(r, &mut buf, line_no)? {
                Some(l) => line = Some(l),
                None => break,
            }
        }
        counter!("store.text.triples_loaded").add(ts.len() as u64);
        Ok(ts.into_database())
    }
}

/// Streams a text dataset file into a database.
pub fn load_text_database(interner: &mut Interner, path: &Path) -> Result<Database, StoreError> {
    let f = std::fs::File::open(path)?;
    let mut r = std::io::BufReader::new(f);
    read_text_database(interner, &mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read(interner: &mut Interner, text: &str) -> Result<Database, StoreError> {
        read_text_database(interner, &mut Cursor::new(text.as_bytes()))
    }

    #[test]
    fn streams_nt_lines() {
        let mut i = Interner::new();
        let text = "# c\n<a> <b> <c> .\n<a> <b> \"d\" .\n";
        let db = read(&mut i, text).unwrap();
        assert_eq!(db.size(), 2);
    }

    #[test]
    fn streams_facts_including_multi_line_atoms() {
        let mut i = Interner::new();
        let text = "edge(a,\n  b)\n# interlude\nedge(b, c), node(\"par ( en\")\n";
        let db = read(&mut i, text).unwrap();
        assert_eq!(db.size(), 3);
        let n = i.pred("node");
        let c = i.constant("par ( en");
        assert!(db.relation(n).unwrap().tuples().any(|t| t[0] == c));
    }

    #[test]
    fn quoted_escapes_do_not_end_atoms_early() {
        let mut i = Interner::new();
        // The first atom's quoted constant contains an escaped quote right
        // before a `)` and then spans a line break: the old quote toggle
        // thought the atom was balanced at the end of line 1 and flushed a
        // mis-framed chunk.
        let text = "edge(a, \"x\\\")\n\", b)\nnode(\"\\u0028\")\n";
        let db = read(&mut i, text).unwrap();
        assert_eq!(db.size(), 2);
        let e = i.pred("edge");
        let c = i.constant("x\")\n");
        assert!(db.relation(e).unwrap().tuples().any(|t| t[1] == c));
        let n = i.pred("node");
        let par = i.constant("(");
        assert!(db.relation(n).unwrap().tuples().any(|t| t[0] == par));
    }

    #[test]
    fn empty_and_comment_only_inputs_give_empty_databases() {
        let mut i = Interner::new();
        assert_eq!(read(&mut i, "").unwrap().size(), 0);
        assert_eq!(read(&mut i, "# only\n\n  \n").unwrap().size(), 0);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let mut i = Interner::new();
        let err = read(&mut i, "<a> <b> <c> .\n<a> <b .\n").unwrap_err();
        match err {
            StoreError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected Parse, got {other:?}"),
        }
        let err = read(&mut i, "edge(a, b)\nedge(a,\n").unwrap_err();
        assert!(matches!(err, StoreError::Parse { .. }), "{err:?}");
    }

    #[test]
    fn rejects_non_ground_facts() {
        let mut i = Interner::new();
        let err = read(&mut i, "edge(?x, b)\n").unwrap_err();
        match err {
            StoreError::Parse { message, .. } => assert!(message.contains("ground")),
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn invalid_utf8_is_a_parse_error_not_a_panic() {
        let mut i = Interner::new();
        let bytes = b"<a> <b> <c> .\n<a> \xFF <c> .\n";
        let err = read_text_database(&mut i, &mut Cursor::new(&bytes[..])).unwrap_err();
        match err {
            StoreError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("utf-8"));
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }
}
