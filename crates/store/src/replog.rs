//! The append-only replication log: the primary's durable record of a
//! WDPTSNAP delta chain, keyed by FNV-1a content hash.
//!
//! A log directory holds the chain's base snapshot (`base.snap`), one file
//! per accepted delta (`NNNNNN-<head>.delta`), and an index file
//! (`repl.log`) of fixed-layout records framed with the same
//! `tag · len · payload · crc32` section codec as the snapshot format.
//! Appends are crash-safe in two steps: the delta file is written
//! atomically (temp + rename) *before* its index record, so on reopen a
//! delta file without a record is simply unreferenced, while a record
//! without its file is a hard error. A partial trailing record (a crash
//! mid-append) is detected as a truncated section and dropped.
//!
//! The log's head hash doubles as the fleet's consistency token: a
//! follower subscribing with its current head receives exactly the suffix
//! of deltas it is missing ([`ReplLog::suffix_from`]), or a full-snapshot
//! bootstrap when its head is not on the chain.

use crate::delta::decode_delta;
use crate::format::{content_hash, malformed, push_section, read_section, Reader, StoreError};
use std::io::Write;
use std::path::{Path, PathBuf};
use wdpt_obs::counter;

/// Magic prefix of the `repl.log` index file (distinct from the snapshot
/// magic so a chain-directory scan can tell them apart without heuristics).
pub const LOG_MAGIC: [u8; 8] = *b"WDPTRLOG";

/// Index-file format version.
pub const LOG_VERSION: u32 = 1;

/// Section tag of one index record.
const TAG_LOG_RECORD: u8 = 0x10;

/// File name of the chain's base snapshot inside a log directory.
pub const BASE_SNAPSHOT_NAME: &str = "base.snap";

/// File name of the index inside a log directory.
pub const LOG_INDEX_NAME: &str = "repl.log";

/// Renders a chain-head hash in the canonical wire form: 16 lowercase hex
/// digits, zero-padded. Every surface that prints or parses a head (the
/// `subscribe` handshake, `min_head` admission, `inspect --json`, metrics)
/// goes through this pair so the forms cannot drift.
pub fn head_hex(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Parses a chain-head hash from its canonical 16-digit hex form.
pub fn parse_head_hex(text: &str) -> Option<u64> {
    if text.len() != 16 || !text.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(text, 16).ok()
}

/// One accepted delta in the log, in chain order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// 1-based position in the chain (the base snapshot is position 0).
    pub seq: u64,
    /// Content hash of the predecessor file (the head this delta extends).
    pub base_hash: u64,
    /// Content hash of the delta file — the chain head after applying it.
    pub hash: u64,
    /// Size of the delta file in bytes.
    pub bytes: u64,
    /// File name within the log directory.
    pub file: String,
}

/// An open replication log directory. See the module docs for the layout.
#[derive(Debug)]
pub struct ReplLog {
    dir: PathBuf,
    base_hash: u64,
    base_bytes: u64,
    entries: Vec<LogEntry>,
}

impl ReplLog {
    /// Opens the log in `dir`, creating and initializing it (writing
    /// `base.snap` from `base_bytes`) on first use. Reopening an existing
    /// log verifies that its recorded base matches `base_bytes`, that every
    /// indexed delta file is present with the recorded content hash, and
    /// that the records chain hash-to-hash; a partial trailing record is
    /// dropped (crash mid-append), any other index corruption is an error.
    pub fn open_or_init(dir: &Path, base_bytes: &[u8]) -> Result<ReplLog, StoreError> {
        std::fs::create_dir_all(dir)?;
        let base_hash = content_hash(base_bytes);
        let base_path = dir.join(BASE_SNAPSHOT_NAME);
        if base_path.exists() {
            let existing = std::fs::read(&base_path)?;
            let existing_hash = content_hash(&existing);
            if existing_hash != base_hash {
                return Err(malformed(
                    "repl log",
                    format!(
                        "log directory was initialized with base {} but the server loaded base {}",
                        head_hex(existing_hash),
                        head_hex(base_hash)
                    ),
                ));
            }
        } else {
            write_atomic(&base_path, base_bytes)?;
        }

        let mut log = ReplLog {
            dir: dir.to_path_buf(),
            base_hash,
            base_bytes: base_bytes.len() as u64,
            entries: Vec::new(),
        };
        log.load_index()?;
        counter!("store.replog.opens").add(1);
        Ok(log)
    }

    fn index_path(&self) -> PathBuf {
        self.dir.join(LOG_INDEX_NAME)
    }

    fn load_index(&mut self) -> Result<(), StoreError> {
        let path = self.index_path();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        let mut r = Reader::new(&bytes);
        let magic = r.take(8, "repl log")?;
        if magic != LOG_MAGIC {
            return Err(malformed("repl log", "index file has the wrong magic"));
        }
        let version = r.u32("repl log")?;
        if version != LOG_VERSION {
            return Err(malformed(
                "repl log",
                format!("unsupported index version {version}"),
            ));
        }
        let mut good_len = 8 + 4;
        while r.remaining() > 0 {
            let label = format!("repl log record[{}]", self.entries.len());
            let section = match read_section(&mut r, &label) {
                Ok(s) => s,
                // A truncated tail is the signature of a crash mid-append:
                // the delta file (written first) may exist unreferenced,
                // which is harmless. Drop the partial record.
                Err(StoreError::Truncated { .. }) => {
                    counter!("store.replog.partial_tail_dropped").add(1);
                    truncate_file(&path, good_len as u64)?;
                    break;
                }
                Err(e) => return Err(e),
            };
            if section.tag != TAG_LOG_RECORD {
                return Err(malformed(&label, format!("unexpected tag {}", section.tag)));
            }
            let entry = parse_record(section.payload, &label)?;
            let expected_base = self.head();
            if entry.base_hash != expected_base {
                return Err(malformed(
                    &label,
                    format!(
                        "record chains to {} but the log head is {}",
                        head_hex(entry.base_hash),
                        head_hex(expected_base)
                    ),
                ));
            }
            if entry.seq != self.entries.len() as u64 + 1 {
                return Err(malformed(
                    &label,
                    format!(
                        "record has sequence {}, expected {}",
                        entry.seq,
                        self.entries.len() + 1
                    ),
                ));
            }
            let file = self.dir.join(&entry.file);
            let delta_bytes = std::fs::read(&file).map_err(|e| {
                malformed(
                    &label,
                    format!("indexed delta {} unreadable: {e}", entry.file),
                )
            })?;
            if delta_bytes.len() as u64 != entry.bytes || content_hash(&delta_bytes) != entry.hash {
                return Err(malformed(
                    &label,
                    format!("delta file {} does not match its index record", entry.file),
                ));
            }
            good_len = bytes.len() - r.remaining();
            self.entries.push(entry);
        }
        Ok(())
    }

    /// The chain head: the content hash of the last accepted delta, or of
    /// the base snapshot when no delta has been accepted.
    pub fn head(&self) -> u64 {
        self.entries.last().map_or(self.base_hash, |e| e.hash)
    }

    /// Content hash of the base snapshot.
    pub fn base_hash(&self) -> u64 {
        self.base_hash
    }

    /// The accepted deltas, in chain order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Every hash on the chain, base first, head last.
    pub fn chain(&self) -> Vec<u64> {
        let mut chain = Vec::with_capacity(self.entries.len() + 1);
        chain.push(self.base_hash);
        chain.extend(self.entries.iter().map(|e| e.hash));
        chain
    }

    /// The suffix of entries a subscriber at head `known` is missing:
    /// empty when it is current, the whole log when it holds only the
    /// base, `None` when `known` is not on this chain at all (the caller
    /// falls back to a full-snapshot bootstrap).
    pub fn suffix_from(&self, known: u64) -> Option<&[LogEntry]> {
        if known == self.base_hash {
            return Some(&self.entries);
        }
        self.entries
            .iter()
            .position(|e| e.hash == known)
            .map(|i| &self.entries[i + 1..])
    }

    /// Accepts one verified delta: structurally decodes it, checks that it
    /// chains onto the current head, writes its file atomically, then
    /// appends its index record. Returns the new entry.
    pub fn append(&mut self, delta_bytes: &[u8]) -> Result<&LogEntry, StoreError> {
        let delta = decode_delta(delta_bytes)?;
        let head = self.head();
        if delta.header.base_hash != head {
            return Err(malformed(
                "repl log",
                format!(
                    "delta chains to {} but the log head is {}",
                    head_hex(delta.header.base_hash),
                    head_hex(head)
                ),
            ));
        }
        let hash = content_hash(delta_bytes);
        let seq = self.entries.len() as u64 + 1;
        let file = format!("{seq:06}-{}.delta", head_hex(hash));
        write_atomic(&self.dir.join(&file), delta_bytes)?;

        let entry = LogEntry {
            seq,
            base_hash: head,
            hash,
            bytes: delta_bytes.len() as u64,
            file,
        };
        let mut record = Vec::new();
        push_section(&mut record, TAG_LOG_RECORD, &encode_record(&entry)?);
        let path = self.index_path();
        let mut f = if path.exists() {
            std::fs::OpenOptions::new().append(true).open(&path)?
        } else {
            let mut f = std::fs::File::create(&path)?;
            f.write_all(&LOG_MAGIC)?;
            f.write_all(&LOG_VERSION.to_le_bytes())?;
            f
        };
        f.write_all(&record)?;
        f.sync_all()?;
        counter!("store.replog.appends").add(1);
        counter!("store.replog.bytes_appended").add(delta_bytes.len() as u64);
        self.entries.push(entry);
        Ok(self.entries.last().expect("entry just pushed"))
    }

    /// Reads one entry's delta file back, verifying its content hash.
    pub fn read_delta(&self, entry: &LogEntry) -> Result<Vec<u8>, StoreError> {
        let bytes = std::fs::read(self.dir.join(&entry.file))?;
        if content_hash(&bytes) != entry.hash {
            return Err(malformed(
                "repl log",
                format!("delta file {} changed on disk", entry.file),
            ));
        }
        Ok(bytes)
    }

    /// Reads the base snapshot back, verifying its content hash.
    pub fn read_base(&self) -> Result<Vec<u8>, StoreError> {
        let bytes = std::fs::read(self.dir.join(BASE_SNAPSHOT_NAME))?;
        if content_hash(&bytes) != self.base_hash {
            return Err(malformed("repl log", "base snapshot changed on disk"));
        }
        Ok(bytes)
    }

    /// Total bytes of the base snapshot.
    pub fn base_bytes(&self) -> u64 {
        self.base_bytes
    }
}

fn encode_record(entry: &LogEntry) -> Result<Vec<u8>, StoreError> {
    let mut out = Vec::with_capacity(8 * 4 + 4 + entry.file.len());
    out.extend_from_slice(&entry.seq.to_le_bytes());
    out.extend_from_slice(&entry.base_hash.to_le_bytes());
    out.extend_from_slice(&entry.hash.to_le_bytes());
    out.extend_from_slice(&entry.bytes.to_le_bytes());
    out.extend_from_slice(
        &crate::format::len_u32(entry.file.len(), "log file name")?.to_le_bytes(),
    );
    out.extend_from_slice(entry.file.as_bytes());
    Ok(out)
}

fn parse_record(payload: &[u8], label: &str) -> Result<LogEntry, StoreError> {
    let mut r = Reader::new(payload);
    let seq = r.u64(label)?;
    let base_hash = r.u64(label)?;
    let hash = r.u64(label)?;
    let bytes = r.u64(label)?;
    let name_len = r.u32(label)? as usize;
    let name = std::str::from_utf8(r.take(name_len, label)?)
        .map_err(|_| malformed(label, "file name is not UTF-8"))?;
    if name.contains('/') || name.contains('\\') || name.contains("..") {
        return Err(malformed(label, "file name escapes the log directory"));
    }
    if r.remaining() != 0 {
        return Err(malformed(label, "trailing bytes"));
    }
    Ok(LogEntry {
        seq,
        base_hash,
        hash,
        bytes,
        file: name.to_string(),
    })
}

fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

fn truncate_file(path: &Path, len: u64) -> Result<(), StoreError> {
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(len)?;
    f.sync_all()?;
    Ok(())
}

/// The result of ordering a directory of chain files: the base snapshot
/// plus every delta in hash order.
#[derive(Debug)]
pub struct ChainScan {
    /// Path of the (single) full snapshot in the directory.
    pub base: PathBuf,
    /// Content hash of the base snapshot file.
    pub base_hash: u64,
    /// `(path, head-after-applying)` for each delta, in chain order.
    pub deltas: Vec<(PathBuf, u64)>,
    /// The final chain head.
    pub head: u64,
}

/// Scans `dir` for WDPTSNAP files and orders them into a single delta
/// chain by content hash: exactly one full snapshot must be present, every
/// delta must chain (directly or transitively) onto it, and no two deltas
/// may share a base (a fork is ambiguous). Non-snapshot files (the
/// `repl.log` index, temp files) are ignored. This is `wdpt-store verify
/// --chain` and the follower bootstrap's view of a log directory.
pub fn scan_chain_dir(dir: &Path) -> Result<ChainScan, StoreError> {
    let mut snapshots: Vec<(PathBuf, u64)> = Vec::new();
    // base_hash of a delta -> (path, its own content hash)
    let mut by_base: std::collections::BTreeMap<u64, (PathBuf, u64)> = Default::default();
    let mut names: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    names.sort();
    for path in names {
        let bytes = std::fs::read(&path)?;
        if bytes.len() < 8 || bytes[..8] != crate::format::MAGIC {
            continue; // not a snapshot or delta; skip (repl.log, temp files)
        }
        let hash = content_hash(&bytes);
        match decode_delta(&bytes) {
            Ok(delta) => {
                if let Some((other, _)) =
                    by_base.insert(delta.header.base_hash, (path.clone(), hash))
                {
                    return Err(malformed(
                        "chain",
                        format!(
                            "{} and {} both chain onto {} (forked chain)",
                            other.display(),
                            path.display(),
                            head_hex(delta.header.base_hash)
                        ),
                    ));
                }
            }
            // `decode_delta` refuses a full snapshot with a typed hint;
            // classify those as the base candidate, propagate real errors.
            Err(e) if e.to_string().contains("full snapshot") => snapshots.push((path, hash)),
            Err(e) => return Err(e),
        }
    }
    let (base, base_hash) = match snapshots.len() {
        0 => return Err(malformed("chain", "directory holds no full snapshot")),
        1 => snapshots.remove(0),
        n => {
            return Err(malformed(
                "chain",
                format!("directory holds {n} full snapshots; a chain has exactly one base"),
            ))
        }
    };
    let mut deltas = Vec::with_capacity(by_base.len());
    let mut head = base_hash;
    while let Some((path, hash)) = by_base.remove(&head) {
        deltas.push((path, hash));
        head = hash;
    }
    if let Some((stray, (path, _))) = by_base.iter().next() {
        return Err(malformed(
            "chain",
            format!(
                "{} chains onto {}, which is not reachable from the base",
                path.display(),
                head_hex(*stray)
            ),
        ));
    }
    Ok(ChainScan {
        base,
        base_hash,
        deltas,
        head,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{delta_to_vec, save_delta, save_snapshot, snapshot_to_vec};
    use wdpt_model::{Const, Database, Interner};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wdpt-replog-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A base pair plus two successive insert-only extensions, round-tripped
    /// through snapshot bytes so relations arrive sorted and indexed.
    fn chain_fixture() -> (Vec<u8>, Vec<Vec<u8>>) {
        let mut i = Interner::new();
        let p = i.pred("edge");
        let mut db = Database::new();
        let (a, b) = (i.constant("a"), i.constant("b"));
        db.insert(p, vec![Const(a.0), Const(b.0)]);
        let base_bytes = snapshot_to_vec(&i, &db).unwrap();
        let (mut ci, mut cdb) = crate::decode_snapshot(&base_bytes).unwrap();

        let mut deltas = Vec::new();
        let mut tip = base_bytes.clone();
        for step in 0..2 {
            let (bi, bdb) = (ci.clone(), cdb.clone());
            let p = ci.pred("edge");
            let c = ci.constant(&format!("n{step}"));
            let d = ci.constant(&format!("m{step}"));
            cdb.insert(p, vec![Const(c.0), Const(d.0)]);
            let bytes = delta_to_vec(content_hash(&tip), &bi, &bdb, &ci, &cdb).unwrap();
            tip = bytes.clone();
            deltas.push(bytes);
        }
        (base_bytes, deltas)
    }

    #[test]
    fn head_hex_round_trips_and_rejects_noncanonical() {
        for h in [0u64, 1, 0xdead_beef_cafe_f00d, u64::MAX] {
            assert_eq!(parse_head_hex(&head_hex(h)), Some(h));
        }
        assert_eq!(parse_head_hex(""), None);
        assert_eq!(parse_head_hex("12345"), None);
        assert_eq!(parse_head_hex("xyzw567890123456"), None);
        assert_eq!(parse_head_hex("0123456789abcdef0"), None);
    }

    #[test]
    fn log_appends_chain_and_survive_reopen() {
        let dir = temp_dir("reopen");
        let (base, deltas) = chain_fixture();
        let mut log = ReplLog::open_or_init(&dir, &base).unwrap();
        assert_eq!(log.head(), content_hash(&base));
        assert_eq!(log.chain(), vec![content_hash(&base)]);
        for d in &deltas {
            log.append(d).unwrap();
        }
        assert_eq!(log.head(), content_hash(deltas.last().unwrap()));
        assert_eq!(log.entries().len(), 2);

        // Reopening with the same base sees the same chain.
        let reopened = ReplLog::open_or_init(&dir, &base).unwrap();
        assert_eq!(reopened.entries(), log.entries());
        assert_eq!(reopened.head(), log.head());
        assert_eq!(reopened.read_base().unwrap(), base);
        assert_eq!(
            reopened.read_delta(&reopened.entries()[0]).unwrap(),
            deltas[0]
        );

        // Reopening with a different base is refused.
        let err = ReplLog::open_or_init(&dir, b"not the same").unwrap_err();
        assert!(err.to_string().contains("initialized with base"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_rejects_out_of_order_delta() {
        let dir = temp_dir("order");
        let (base, deltas) = chain_fixture();
        let mut log = ReplLog::open_or_init(&dir, &base).unwrap();
        // deltas[1] chains onto deltas[0], not onto the base.
        let err = log.append(&deltas[1]).unwrap_err();
        assert!(err.to_string().contains("log head"), "{err}");
        assert_eq!(log.entries().len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suffix_from_returns_exactly_the_missing_tail() {
        let dir = temp_dir("suffix");
        let (base, deltas) = chain_fixture();
        let mut log = ReplLog::open_or_init(&dir, &base).unwrap();
        for d in &deltas {
            log.append(d).unwrap();
        }
        assert_eq!(log.suffix_from(log.head()).unwrap().len(), 0);
        assert_eq!(log.suffix_from(content_hash(&base)).unwrap().len(), 2);
        assert_eq!(
            log.suffix_from(content_hash(&deltas[0])).unwrap(),
            &log.entries()[1..]
        );
        assert!(log.suffix_from(0xdead_beef).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_trailing_record_is_dropped_on_reopen() {
        let dir = temp_dir("tail");
        let (base, deltas) = chain_fixture();
        let mut log = ReplLog::open_or_init(&dir, &base).unwrap();
        for d in &deltas {
            log.append(d).unwrap();
        }
        // Chop bytes off the index tail: a crash between the delta-file
        // write and a complete record append.
        let idx = dir.join(LOG_INDEX_NAME);
        let bytes = std::fs::read(&idx).unwrap();
        std::fs::write(&idx, &bytes[..bytes.len() - 7]).unwrap();
        let reopened = ReplLog::open_or_init(&dir, &base).unwrap();
        assert_eq!(reopened.entries().len(), 1);
        assert_eq!(reopened.head(), content_hash(&deltas[0]));
        // The next append re-records the dropped delta cleanly.
        let mut reopened = reopened;
        reopened.append(&deltas[1]).unwrap();
        assert_eq!(reopened.head(), content_hash(&deltas[1]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_record_body_is_a_hard_error() {
        let dir = temp_dir("corrupt");
        let (base, deltas) = chain_fixture();
        let mut log = ReplLog::open_or_init(&dir, &base).unwrap();
        log.append(&deltas[0]).unwrap();
        let idx = dir.join(LOG_INDEX_NAME);
        let mut bytes = std::fs::read(&idx).unwrap();
        let mid = 8 + 4 + 10; // inside the first record
        bytes[mid] ^= 0xFF;
        std::fs::write(&idx, &bytes).unwrap();
        let err = ReplLog::open_or_init(&dir, &base).unwrap_err();
        assert!(
            matches!(err, StoreError::ChecksumMismatch { .. }),
            "expected checksum error, got {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_chain_dir_orders_by_hash_and_rejects_forks() {
        let dir = temp_dir("scan");
        let (base, deltas) = chain_fixture();
        let (i, db) = crate::decode_snapshot(&base).unwrap();
        // Write files with names that do NOT sort in chain order.
        save_snapshot(&dir.join("zz-base.snap"), &i, &db).unwrap();
        save_delta(&dir.join("b-second.delta"), &deltas[1]).unwrap();
        save_delta(&dir.join("a-first.delta"), &deltas[0]).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();

        let scan = scan_chain_dir(&dir).unwrap();
        assert_eq!(scan.base_hash, content_hash(&base));
        assert_eq!(scan.deltas.len(), 2);
        assert!(scan.deltas[0].0.ends_with("a-first.delta"));
        assert!(scan.deltas[1].0.ends_with("b-second.delta"));
        assert_eq!(scan.head, content_hash(&deltas[1]));

        // A second delta with the same base forks the chain.
        save_delta(&dir.join("c-fork.delta"), &deltas[0]).unwrap();
        // Identical bytes → identical base hash → fork error (the scan
        // cannot know the two files are the same update).
        let err = scan_chain_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("fork"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_chain_dir_flags_unreachable_deltas() {
        let dir = temp_dir("stray");
        let (base, deltas) = chain_fixture();
        let (i, db) = crate::decode_snapshot(&base).unwrap();
        save_snapshot(&dir.join("base.snap"), &i, &db).unwrap();
        // Only the second delta: its base (delta 0) is not in the dir.
        save_delta(&dir.join("second.delta"), &deltas[1]).unwrap();
        let err = scan_chain_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("not reachable"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
