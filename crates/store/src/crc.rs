//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven, std-only.
//!
//! Every snapshot section carries a CRC over its tag, length, and payload,
//! so any single flipped byte anywhere in a section is guaranteed to be
//! detected (CRC-32 detects all burst errors up to 32 bits) and surfaces as
//! a typed [`crate::StoreError::ChecksumMismatch`] instead of a garbled
//! database.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// A streaming CRC-32 accumulator.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = (self.state ^ u32::from(b)) & 0xFF;
            self.state = (self.state >> 8) ^ TABLE[idx as usize];
        }
    }

    /// The checksum of everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot convenience over [`Crc32`].
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"well-designed pattern trees";
        let mut c = Crc32::new();
        c.update(&data[..7]);
        c.update(&data[7..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn single_byte_flips_always_change_the_checksum() {
        let data: Vec<u8> = (0..251u32).map(|i| (i * 7 % 256) as u8).collect();
        let base = crc32(&data);
        let mut flipped = data.clone();
        for i in 0..flipped.len() {
            for bit in [1u8, 0x80] {
                flipped[i] ^= bit;
                assert_ne!(crc32(&flipped), base, "flip at {i} undetected");
                flipped[i] ^= bit;
            }
        }
    }
}
