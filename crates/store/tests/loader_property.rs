//! Randomized property tests for the parallel bulk loader.
//!
//! Two properties, each over LCG-randomized inputs (fixed seed, so runs
//! are reproducible):
//!
//! 1. **Thread independence**: for random thread counts and chunk sizes,
//!    the snapshot bytes equal the `threads = 1` bytes on the same input.
//! 2. **Serial equivalence**: the loaded database displays identically to
//!    the serial `read_text_database` oracle on the same input.

use std::io::Cursor;
use wdpt_gen::Lcg;
use wdpt_model::Interner;
use wdpt_store::{bulk_load, read_text_database, snapshot_to_vec, LoadOptions};

/// A random mixed-shape facts dataset: several predicates of differing
/// arities, quoted constants with escapes, comments, blank lines, and
/// multi-line atoms — the shapes that stress chunk balancing.
fn random_facts(r: &mut Lcg) -> String {
    let preds = ["edge", "node", "tag", "wt"];
    let arities = [2usize, 1, 3, 2];
    let mut out = String::new();
    let n = 50 + r.gen_range(0..150);
    for _ in 0..n {
        match r.gen_range(0..12) {
            0 => out.push('\n'),
            // Comment lines may contain unbalanced parens and quotes: both
            // loaders skip them whole between atoms, never feeding them to
            // the balance scanner.
            1 => out.push_str("# comment with ( and \" left open\n"),
            _ => {
                let which = r.gen_range(0..preds.len());
                out.push_str(preds[which]);
                out.push('(');
                for a in 0..arities[which] {
                    if a > 0 {
                        // Sometimes break the argument list across lines.
                        out.push_str(if r.gen_bool(0.2) { ",\n  " } else { ", " });
                    }
                    if r.gen_bool(0.3) {
                        // A quoted constant, sometimes with escapes.
                        out.push('"');
                        match r.gen_range(0..4) {
                            0 => out.push_str("plain"),
                            1 => out.push_str("q\\\"uote"),
                            2 => out.push_str("par(\\u0029"),
                            _ => out.push_str("back\\\\slash"),
                        }
                        out.push('"');
                    } else {
                        let v = r.gen_range(0..30);
                        out.push('c');
                        out.push_str(&v.to_string());
                    }
                }
                out.push_str(")\n");
            }
        }
    }
    out
}

/// A random N-Triples dataset with a small universe (lots of duplicate
/// symbols and some duplicate triples).
fn random_nt(r: &mut Lcg) -> String {
    let mut out = String::new();
    let n = 100 + r.gen_range(0..400);
    for _ in 0..n {
        let s = r.gen_range(0..40);
        let p = r.gen_range(0..5);
        let o = r.gen_range(0..25);
        out.push_str(&format!("<s{s}> <p{p}> <o{o}> .\n"));
    }
    out
}

fn snapshot_bytes(text: &str, opts: LoadOptions) -> (Vec<u8>, String) {
    let mut i = Interner::new();
    let (db, _) = bulk_load(&mut i, &mut Cursor::new(text.as_bytes()), opts).unwrap();
    (snapshot_to_vec(&i, &db).unwrap(), db.display(&i))
}

#[test]
fn random_inputs_load_identically_at_any_thread_count() {
    let mut r = Lcg::new(0x5EED);
    for round in 0..20 {
        let text = if round % 2 == 0 {
            random_nt(&mut r)
        } else {
            random_facts(&mut r)
        };
        let (reference, _) = snapshot_bytes(
            &text,
            LoadOptions {
                threads: 1,
                chunk_lines: 64,
            },
        );
        for _ in 0..3 {
            let opts = LoadOptions {
                threads: 1 + r.gen_range(0..8),
                chunk_lines: 1 + r.gen_range(0..40),
            };
            let (bytes, _) = snapshot_bytes(&text, opts);
            assert_eq!(
                reference, bytes,
                "round {round}: {opts:?} diverged from threads=1"
            );
        }
    }
}

#[test]
fn random_inputs_match_the_serial_oracle() {
    let mut r = Lcg::new(0xFACADE);
    for round in 0..20 {
        let text = if round % 2 == 0 {
            random_nt(&mut r)
        } else {
            random_facts(&mut r)
        };
        let opts = LoadOptions {
            threads: 1 + r.gen_range(0..6),
            chunk_lines: 1 + r.gen_range(0..10),
        };
        let (_, parallel_display) = snapshot_bytes(&text, opts);

        let mut oracle_i = Interner::new();
        let oracle_db =
            read_text_database(&mut oracle_i, &mut Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(
            parallel_display,
            oracle_db.display(&oracle_i),
            "round {round}: parallel load disagrees with the serial loader"
        );
    }
}
