//! The headline determinism guarantee of two-pass parallel interning:
//! bulk loads at different `--threads` settings produce byte-identical
//! snapshots AND identical loader counters.
//!
//! This lives in its own integration-test binary because `wdpt-obs`
//! counters are process-global: any concurrently running test that touches
//! the loader would perturb the deltas. Within this process the matrix runs
//! sequentially inside one `#[test]`.

use std::io::Cursor;
use wdpt_gen::{write_synth_nt, SynthParams};
use wdpt_model::Interner;
use wdpt_obs::metrics_snapshot;
use wdpt_store::{bulk_load, snapshot_to_vec, LoadOptions};

#[test]
fn snapshots_and_counters_are_identical_across_thread_counts() {
    // Enough triples that every thread count actually exercises multiple
    // chunks per worker, with a universe small enough to force symbol reuse
    // (so local dictionaries overlap heavily across workers).
    let params = SynthParams {
        triples: 20_000,
        subjects: 700,
        preds: 16,
        objects: 300,
        seed: 0xBEEF,
    };
    let mut text = Vec::new();
    write_synth_nt(&mut text, params).unwrap();

    let watched = [
        "store.intern.appended",
        "store.bulk.lines",
        "store.bulk.tuples",
        "store.bulk.duplicates",
    ];
    let mut reference: Option<(Vec<u8>, Vec<u64>)> = None;
    for threads in [1usize, 2, 8] {
        let opts = LoadOptions {
            threads,
            chunk_lines: 512,
        };
        let before = metrics_snapshot();
        let mut interner = Interner::new();
        let (db, report) = bulk_load(&mut interner, &mut Cursor::new(&text), opts).unwrap();
        let delta = metrics_snapshot().since(&before);

        let bytes = snapshot_to_vec(&interner, &db).unwrap();
        let counters: Vec<u64> = watched.iter().map(|n| delta.counter(n)).collect();
        assert_eq!(report.threads, threads);
        assert!(report.duplicates > 0, "universe too large to collide");
        match &reference {
            None => reference = Some((bytes, counters)),
            Some((ref_bytes, ref_counters)) => {
                assert_eq!(
                    ref_bytes, &bytes,
                    "threads={threads} changed the snapshot bytes"
                );
                assert_eq!(
                    ref_counters, &counters,
                    "threads={threads} changed the loader counters {watched:?}"
                );
            }
        }
    }
}
