//! The headline determinism guarantee of two-pass parallel interning:
//! bulk loads at different `--threads` settings produce byte-identical
//! snapshots AND identical loader counters.
//!
//! `wdpt-obs` counters are process-global, so each load runs inside
//! [`wdpt_obs::delta_scope`], which serializes metric-sensitive sections
//! across threads and hands back exactly the registry delta the section
//! produced. That makes the counter comparison safe even with other tests
//! of this binary (or future ones) running concurrently — no own-process
//! isolation needed.

use std::io::Cursor;
use wdpt_gen::{write_synth_nt, SynthParams};
use wdpt_model::Interner;
use wdpt_obs::delta_scope;
use wdpt_store::{bulk_load, snapshot_to_vec, LoadOptions};

#[test]
fn snapshots_and_counters_are_identical_across_thread_counts() {
    // Enough triples that every thread count actually exercises multiple
    // chunks per worker, with a universe small enough to force symbol reuse
    // (so local dictionaries overlap heavily across workers).
    let params = SynthParams {
        triples: 20_000,
        subjects: 700,
        preds: 16,
        objects: 300,
        seed: 0xBEEF,
        skew: 0,
    };
    let mut text = Vec::new();
    write_synth_nt(&mut text, params).unwrap();

    let watched = [
        "store.intern.appended",
        "store.bulk.lines",
        "store.bulk.tuples",
        "store.bulk.duplicates",
    ];
    let mut reference: Option<(Vec<u8>, Vec<u64>)> = None;
    for threads in [1usize, 2, 8] {
        let opts = LoadOptions {
            threads,
            chunk_lines: 512,
        };
        let ((db, report, bytes), delta) = delta_scope(|| {
            let mut interner = Interner::new();
            let (db, report) = bulk_load(&mut interner, &mut Cursor::new(&text), opts).unwrap();
            let bytes = snapshot_to_vec(&interner, &db).unwrap();
            (db, report, bytes)
        });

        let counters: Vec<u64> = watched.iter().map(|n| delta.counter(n)).collect();
        assert_eq!(report.threads, threads);
        assert!(report.duplicates > 0, "universe too large to collide");
        assert_eq!(db.size() as u64, report.tuples);
        match &reference {
            None => reference = Some((bytes, counters)),
            Some((ref_bytes, ref_counters)) => {
                assert_eq!(
                    ref_bytes, &bytes,
                    "threads={threads} changed the snapshot bytes"
                );
                assert_eq!(
                    ref_counters, &counters,
                    "threads={threads} changed the loader counters {watched:?}"
                );
            }
        }
    }
}
