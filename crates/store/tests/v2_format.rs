//! v2 (columnar varint) format tests: lossless round trips, lazy decode
//! behavior, corruption and length-bomb resistance, the size guarantee the
//! format exists for, and the deep-verify net under forged-but-CRC-valid
//! posting directories.

use wdpt_gen::Lcg;
use wdpt_model::{Database, Interner, SymbolSpace};
use wdpt_store::{
    crc32, decode_snapshot, snapshot_to_vec, snapshot_to_vec_v2, verify_database_deep, StoreError,
    VERSION_V2,
};

/// Same construction as the v1 round-trip property test: mixed arities,
/// shared constants, unused symbols, unicode names, a bumped fresh counter.
fn random_instance(seed: u64) -> (Interner, Database) {
    let mut rng = Lcg::new(seed);
    let mut interner = Interner::new();
    let n_consts = 2 + rng.gen_range(0..40);
    let consts: Vec<_> = (0..n_consts)
        .map(|i| interner.constant(&format!("c{i}")))
        .collect();
    for i in 0..rng.gen_range(0..5) {
        interner.var(&format!("v{i}"));
    }
    for i in 0..rng.gen_range(0..3) {
        interner.pred(&format!("unused{i}"));
    }
    interner.constant("with space");
    interner.constant("caf\u{00E9}\u{2603}");
    let mut db = Database::new();
    let n_rels = rng.gen_range(0..5);
    for r in 0..n_rels {
        let pred = interner.pred(&format!("rel{r}"));
        let arity = 1 + rng.gen_range(0..4);
        let rows = rng.gen_range(0..60);
        for _ in 0..rows {
            let tuple: Vec<_> = (0..arity)
                .map(|_| consts[rng.gen_range(0..consts.len())])
                .collect();
            db.insert(pred, tuple);
        }
    }
    for _ in 0..rng.gen_range(0..4) {
        interner.fresh_var("f");
    }
    (interner, db)
}

fn sample_snapshot_v2() -> Vec<u8> {
    let mut i = Interner::new();
    let e = i.pred("edge");
    let n = i.pred("node");
    let (a, b, c) = (i.constant("a"), i.constant("b"), i.constant("caf\u{00E9}"));
    i.var("x");
    let mut db = Database::new();
    db.insert(e, vec![a, b]);
    db.insert(e, vec![b, c]);
    db.insert(e, vec![a, c]);
    db.insert(n, vec![a]);
    db.insert(n, vec![b]);
    snapshot_to_vec_v2(&i, &db).unwrap()
}

#[test]
fn random_databases_round_trip_losslessly_through_v2() {
    for seed in 0..40u64 {
        let (interner, db) = random_instance(seed ^ 0x0C01_0C01);
        let bytes = snapshot_to_vec_v2(&interner, &db).unwrap();
        let (i2, db2) = decode_snapshot(&bytes)
            .unwrap_or_else(|e| panic!("seed {seed}: v2 decode failed: {e}"));

        let a_syms: Vec<(SymbolSpace, &str)> = interner.symbols().collect();
        let b_syms: Vec<(SymbolSpace, &str)> = i2.symbols().collect();
        assert_eq!(a_syms, b_syms, "seed {seed}: dictionary");
        assert_eq!(
            interner.fresh_counter(),
            i2.fresh_counter(),
            "seed {seed}: fresh counter"
        );

        assert_eq!(db.size(), db2.size(), "seed {seed}: tuple count");
        assert_eq!(
            db.active_domain(),
            db2.active_domain(),
            "seed {seed}: active domain"
        );
        for (pred, rel) in db.relations() {
            let brel = db2.relation(pred).unwrap();
            assert_eq!(rel.arity(), brel.arity(), "seed {seed}: arity");
            let mut at: Vec<_> = rel.tuples().collect();
            let mut bt: Vec<_> = brel.tuples().collect();
            at.sort_unstable();
            bt.sort_unstable();
            assert_eq!(at, bt, "seed {seed}: tuples of {pred:?}");
            for col in 0..rel.arity() {
                for c in db.active_domain() {
                    assert_eq!(
                        rel.posting_len(col, *c),
                        brel.posting_len(col, *c),
                        "seed {seed}: posting length col {col}"
                    );
                }
            }
        }

        // Both directions of re-encoding reproduce bytes exactly: the v2
        // encode of the decoded pair is a fixed point, and the v1 encode
        // matches a direct v1 encode of the original (migration parity).
        assert_eq!(
            bytes,
            snapshot_to_vec_v2(&i2, &db2).unwrap(),
            "seed {seed}: v2 re-encode differs"
        );
        assert_eq!(
            snapshot_to_vec(&interner, &db).unwrap(),
            snapshot_to_vec(&i2, &db2).unwrap(),
            "seed {seed}: v1 encode of v2-decoded pair differs"
        );
        verify_database_deep(&db2).unwrap_or_else(|e| panic!("seed {seed}: deep verify: {e}"));
    }
}

#[test]
fn v2_decode_is_lazy_and_stats_scans_stay_lazy() {
    let mut i = Interner::new();
    let e = i.pred("e");
    let consts: Vec<_> = (0..20).map(|k| i.constant(&format!("c{k}"))).collect();
    let mut db = Database::new();
    let mut rng = Lcg::new(9);
    for _ in 0..200 {
        db.insert(
            e,
            vec![
                consts[rng.gen_range(0..consts.len())],
                consts[rng.gen_range(0..consts.len())],
            ],
        );
    }
    let n = db.size() as u64; // inserts drop duplicates
    let bytes = snapshot_to_vec_v2(&i, &db).unwrap();
    let (_, db2) = decode_snapshot(&bytes).unwrap();
    let rel = db2.relation(e).unwrap();
    assert!(rel.is_lazy(), "fresh v2 decode must not materialize");
    assert_eq!(rel.len() as u64, n, "len comes from the header, not a decode");

    // The statistics path streams posting lengths from the serialized key
    // directory without decoding any column.
    let mut streamed = 0u64;
    assert!(rel.scan_posting_lens(0, |_, n| streamed += u64::from(n)));
    assert_eq!(streamed, n);
    assert!(
        rel.built_column_index(0).is_none(),
        "scanning the directory must not build an index"
    );
    assert!(rel.is_lazy(), "directory scan must keep the relation lazy");

    // The active domain likewise comes from the directories alone.
    assert_eq!(db2.active_domain(), db.active_domain());
    assert!(db2.relation(e).unwrap().is_lazy());

    // A real probe decodes on demand and answers correctly.
    let probe = vec![Some(consts[0]), None];
    let mut a: Vec<_> = db.relation(e).unwrap().matching(&probe).collect();
    let mut b: Vec<_> = db2.relation(e).unwrap().matching(&probe).collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
}

#[test]
fn every_v2_truncation_is_a_typed_error() {
    let bytes = sample_snapshot_v2();
    for len in 0..bytes.len() {
        match decode_snapshot(&bytes[..len]) {
            Ok(_) => panic!("decode of {len}-byte prefix succeeded"),
            Err(
                StoreError::Truncated { .. }
                | StoreError::BadMagic
                | StoreError::ChecksumMismatch { .. }
                | StoreError::Malformed { .. },
            ) => {}
            Err(other) => panic!("prefix of {len} bytes gave unexpected error: {other}"),
        }
    }
}

#[test]
fn every_v2_single_byte_flip_is_a_typed_error() {
    let bytes = sample_snapshot_v2();
    let mut mutated = bytes.clone();
    for i in 0..bytes.len() {
        for bit in [0x01u8, 0x80u8] {
            mutated[i] ^= bit;
            match decode_snapshot(&mutated) {
                Err(
                    StoreError::BadMagic
                    | StoreError::UnsupportedVersion(_)
                    | StoreError::Truncated { .. }
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::Malformed { .. },
                ) => {}
                Err(other) => panic!("flip at byte {i}: unexpected error {other}"),
                Ok(_) => panic!("flip at byte {i} went undetected"),
            }
            mutated[i] ^= bit;
        }
    }
    assert_eq!(mutated, bytes, "mutation loop must restore the input");
}

// ---------------------------------------------------------------------------
// Section surgery helpers: locate a section in a serialized snapshot/delta,
// patch its payload, and re-stamp the CRC so only the *semantic* check under
// test can reject the file.

const FRAME: usize = 13; // tag u8 + len u64 + crc u32

/// Returns `(payload_start, payload_len)` of the first section with `tag`.
fn find_section(bytes: &[u8], tag: u8) -> (usize, usize) {
    let mut pos = 12; // magic + version
    while pos < bytes.len() {
        let t = bytes[pos];
        let len = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().unwrap()) as usize;
        if t == tag {
            return (pos + 9, len);
        }
        pos += FRAME + len;
    }
    panic!("no section with tag {tag:#x}");
}

/// Recomputes the CRC of the section whose payload starts at `payload_start`.
fn restamp_crc(bytes: &mut [u8], payload_start: usize, payload_len: usize) {
    let span = &bytes[payload_start - 9..payload_start + payload_len];
    let crc = crc32(span);
    bytes[payload_start + payload_len..payload_start + payload_len + 4]
        .copy_from_slice(&crc.to_le_bytes());
}

fn expect_bomb_rejected(what: &str, result: Result<(Interner, Database), StoreError>) {
    match result {
        Err(StoreError::Malformed { .. } | StoreError::Truncated { .. }) => {}
        Err(other) => panic!("{what}: unexpected error {other}"),
        Ok(_) => panic!("{what}: length bomb went undetected"),
    }
}

#[test]
fn v1_length_bombs_are_rejected_without_allocation() {
    let mut i = Interner::new();
    let e = i.pred("e");
    let (a, b) = (i.constant("a"), i.constant("b"));
    let mut db = Database::new();
    db.insert(e, vec![a, b]);
    let bytes = snapshot_to_vec(&i, &db).unwrap();

    // Dictionary claims u64::MAX entries in a handful of payload bytes.
    let mut bomb = bytes.clone();
    let (hs, hl) = find_section(&bomb, 0x01);
    bomb[hs..hs + 8].copy_from_slice(&u64::MAX.to_le_bytes()); // header.symbols
    restamp_crc(&mut bomb, hs, hl);
    expect_bomb_rejected("v1 symbol-count bomb", decode_snapshot(&bomb));

    // Relation claims ~u64::MAX rows.
    let mut bomb = bytes.clone();
    let (rs, rl) = find_section(&bomb, 0x03);
    bomb[rs + 8..rs + 16].copy_from_slice(&(u64::MAX / 2).to_le_bytes()); // rows
    restamp_crc(&mut bomb, rs, rl);
    expect_bomb_rejected("v1 row-count bomb", decode_snapshot(&bomb));

    // Relation claims u32::MAX columns.
    let mut bomb = bytes;
    let (rs, rl) = find_section(&bomb, 0x03);
    bomb[rs + 4..rs + 8].copy_from_slice(&u32::MAX.to_le_bytes()); // arity
    restamp_crc(&mut bomb, rs, rl);
    expect_bomb_rejected("v1 arity bomb", decode_snapshot(&bomb));
}

#[test]
fn v2_length_bombs_are_rejected_without_allocation() {
    let bytes = sample_snapshot_v2();

    // Rows inflated to the u32 ceiling: caught against the cells byte count.
    let mut bomb = bytes.clone();
    let (rs, rl) = find_section(&bomb, 0x06);
    bomb[rs + 8..rs + 16].copy_from_slice(&u64::from(u32::MAX).to_le_bytes());
    restamp_crc(&mut bomb, rs, rl);
    expect_bomb_rejected("v2 row-count bomb", decode_snapshot(&bomb));

    // Arity inflated: each column owes a 24-byte table entry.
    let mut bomb = bytes.clone();
    let (rs, rl) = find_section(&bomb, 0x06);
    bomb[rs + 4..rs + 8].copy_from_slice(&u32::MAX.to_le_bytes());
    restamp_crc(&mut bomb, rs, rl);
    expect_bomb_rejected("v2 arity bomb", decode_snapshot(&bomb));

    // Key count inflated past what the directory bytes can hold.
    let mut bomb = bytes.clone();
    let (rs, rl) = find_section(&bomb, 0x06);
    bomb[rs + 24..rs + 32].copy_from_slice(&(u64::MAX / 2).to_le_bytes()); // col 0 keys
    restamp_crc(&mut bomb, rs, rl);
    expect_bomb_rejected("v2 key-count bomb", decode_snapshot(&bomb));

    // Dictionary claims far more symbols than the payload encodes.
    let mut bomb = bytes;
    let (hs, hl) = find_section(&bomb, 0x01);
    bomb[hs..hs + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    restamp_crc(&mut bomb, hs, hl);
    expect_bomb_rejected("v2 symbol-count bomb", decode_snapshot(&bomb));
}

#[test]
fn delta_length_bombs_are_rejected_without_allocation() {
    let mut i = Interner::new();
    let e = i.pred("e");
    let (a, b) = (i.constant("a"), i.constant("b"));
    let mut db = Database::new();
    db.insert(e, vec![a, a]);
    let base = snapshot_to_vec(&i, &db).unwrap();
    let mut i2 = i.clone();
    let mut db2 = db.clone();
    let c = i2.constant("c");
    db2.insert(e, vec![b, c]);
    let delta =
        wdpt_store::delta_to_vec(wdpt_store::content_hash(&base), &i, &db, &i2, &db2).unwrap();

    let check = |bomb: &[u8], what: &str| {
        expect_bomb_rejected(what, wdpt_store::decode_with_deltas(&base, &[bomb.to_vec()]));
    };

    // Delta header claims u32::MAX relation sections.
    let mut bomb = delta.clone();
    let (hs, hl) = find_section(&bomb, 0x04);
    bomb[hs + 32..hs + 36].copy_from_slice(&u32::MAX.to_le_bytes());
    restamp_crc(&mut bomb, hs, hl);
    check(&bomb, "delta relation-count bomb");

    // Relation delta claims ~u64::MAX rows in a few cell bytes.
    let mut bomb = delta.clone();
    let (rs, rl) = find_section(&bomb, 0x05);
    bomb[rs + 8..rs + 16].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
    restamp_crc(&mut bomb, rs, rl);
    check(&bomb, "delta row-count bomb");

    // Relation delta claims u32::MAX columns.
    let mut bomb = delta;
    let (rs, rl) = find_section(&bomb, 0x05);
    bomb[rs + 4..rs + 8].copy_from_slice(&u32::MAX.to_le_bytes());
    restamp_crc(&mut bomb, rs, rl);
    check(&bomb, "delta arity bomb");
}

#[test]
fn forged_key_directory_passes_decode_but_fails_deep_verify() {
    // Column cells and the key directory are independently CRC-protected,
    // so a *writer* bug (or a deliberate forgery that re-stamps the CRC)
    // could ship a directory that is internally consistent — ascending
    // in-namespace keys, lengths summing to the row count — yet disagrees
    // with the cells. Decode accepts it (queries never read the directory,
    // so answers stay correct); `verify_database_deep` must reject it.
    let mut i = Interner::new();
    let e = i.pred("e");
    let a = i.constant("a");
    let b = i.constant("b");
    let c = i.constant("c"); // interned but unused: the forged key
    let x = i.constant("x");
    let mut db = Database::new();
    db.insert(e, vec![a, x]);
    db.insert(e, vec![b, x]);
    let mut bytes = snapshot_to_vec_v2(&i, &db).unwrap();

    let (rs, rl) = find_section(&bytes, 0x06);
    let arity = u32::from_le_bytes(bytes[rs + 4..rs + 8].try_into().unwrap()) as usize;
    assert_eq!(arity, 2);
    let cells0 = u64::from_le_bytes(bytes[rs + 16..rs + 24].try_into().unwrap()) as usize;
    let dir0_bytes = u64::from_le_bytes(bytes[rs + 32..rs + 40].try_into().unwrap()) as usize;
    // Column 0 directory is [(a,1), (b,1)] = 4 single-byte varints:
    // key a, len 1, delta b-a, len 1.
    let dir0 = rs + 16 + arity * 24 + cells0;
    assert_eq!(dir0_bytes, 4);
    assert_eq!(bytes[dir0], a.0 as u8);
    assert_eq!(bytes[dir0 + 2], (b.0 - a.0) as u8);
    // Forge the second key from b to c (same byte length, still ascending,
    // still a constant, lengths still sum to the 2 rows).
    bytes[dir0 + 2] = (c.0 - a.0) as u8;
    restamp_crc(&mut bytes, rs, rl);

    let (_, forged) = decode_snapshot(&bytes).expect("forged directory is CRC- and shape-valid");
    // Queries still answer from the cells, correctly.
    let probe = vec![Some(b), None];
    assert_eq!(forged.relation(e).unwrap().matching(&probe).count(), 1);
    // But the deep check cross-references the directory against the cells.
    let err = verify_database_deep(&forged).expect_err("forged directory must fail deep verify");
    assert!(matches!(err, StoreError::Malformed { .. }), "{err}");
}

#[test]
fn v2_snapshots_are_at_most_six_tenths_of_v1() {
    // The acceptance bar for the format: on a realistically-shaped dataset
    // (synthetic triples, mild skew), v2 must be ≤ 0.6× the v1 size.
    let mut nt = Vec::new();
    wdpt_gen::write_synth_nt(&mut nt, wdpt_gen::SynthParams::sized_skewed(50_000, 3)).unwrap();
    let mut i = Interner::new();
    let db =
        wdpt_store::read_text_database(&mut i, &mut std::io::BufReader::new(nt.as_slice())).unwrap();
    let v1 = snapshot_to_vec(&i, &db).unwrap();
    let v2 = snapshot_to_vec_v2(&i, &db).unwrap();
    assert!(
        v2.len() * 10 <= v1.len() * 6,
        "v2 is {} bytes, v1 is {} ({}%)",
        v2.len(),
        v1.len(),
        v2.len() * 100 / v1.len()
    );
    // And the compressed form still decodes to the same database.
    let (_, db2) = decode_snapshot(&v2).unwrap();
    assert_eq!(db.size(), db2.size());
    let (_, db1) = decode_snapshot(&v1).unwrap();
    assert_eq!(db1.active_domain(), db2.active_domain());
}

#[test]
fn v2_header_version_and_inspect_report_the_encoding() {
    let bytes = sample_snapshot_v2();
    let summary = wdpt_store::inspect_snapshot(&bytes).unwrap();
    assert_eq!(summary.header.version, VERSION_V2);
    assert_eq!(summary.relations.len(), 2);
    for r in &summary.relations {
        assert!(
            r.raw_bytes >= r.bytes as u64,
            "{}: raw {} < stored {}",
            r.name,
            r.raw_bytes,
            r.bytes
        );
    }
    assert!(summary.dict_raw_bytes >= summary.dict_bytes as u64);
}
