//! End-to-end parity: a database loaded from a v2 (columnar varint)
//! snapshot must be **observationally identical** to the same database
//! loaded from a v1 snapshot — identical WDPT answer sets *and* identical
//! `nodes_expanded` work counts — at every thread count. The engine cannot
//! tell the encodings apart.
//!
//! Kept to a single `#[test]` on purpose: the engine counters are
//! process-wide, so a second concurrently-running test in this binary
//! would corrupt the `nodes_expanded` comparison.

use wdpt_gen::{random_wdpt, Lcg};
use wdpt_model::{stats, Database, Interner, Mapping};
use wdpt_store::{decode_snapshot, snapshot_to_vec, snapshot_to_vec_v2};

/// A random database over the binary predicates `e` and `f` that
/// [`random_wdpt`] queries mention (plus self-loops so root nodes match).
fn random_ef_db(interner: &mut Interner, seed: u64) -> Database {
    let mut rng = Lcg::new(seed);
    let e = interner.pred("e");
    let f = interner.pred("f");
    let dom: Vec<_> = (0..12)
        .map(|k| interner.constant(&format!("n{k}")))
        .collect();
    let mut db = Database::new();
    for &c in dom.iter().take(6) {
        db.insert(e, vec![c, c]); // self-loops: random_wdpt roots demand them
    }
    for _ in 0..80 {
        let a = dom[rng.gen_range(0..dom.len())];
        let b = dom[rng.gen_range(0..dom.len())];
        if rng.gen_bool(0.7) {
            db.insert(e, vec![a, b]);
        } else {
            db.insert(f, vec![a, b]);
        }
    }
    db
}

fn run(p: &wdpt_core::Wdpt, db: &Database, threads: usize) -> (Vec<Mapping>, u64) {
    let before = stats::snapshot();
    let mut answers = wdpt_core::evaluate_parallel(p, db, threads);
    let expanded = stats::snapshot().since(&before).nodes_expanded;
    answers.sort_unstable();
    (answers, expanded)
}

#[test]
fn v1_and_v2_loads_answer_identically_with_identical_work() {
    for seed in 0..12u64 {
        let mut interner = Interner::new();
        let db = random_ef_db(&mut interner, seed ^ 0xD1FF);
        let mut rng = Lcg::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
        let p = random_wdpt(&mut interner, 2 + (seed as usize % 5), &mut rng);

        let v1 = snapshot_to_vec(&interner, &db).unwrap();
        let v2 = snapshot_to_vec_v2(&interner, &db).unwrap();
        let (_, db_v1) = decode_snapshot(&v1).unwrap();
        let (_, db_v2) = decode_snapshot(&v2).unwrap();
        assert!(
            db_v2.relations().all(|(_, r)| r.is_lazy()),
            "seed {seed}: v2 load must start lazy"
        );

        for threads in [1usize, 8] {
            let (a1, n1) = run(&p, &db_v1, threads);
            let (a2, n2) = run(&p, &db_v2, threads);
            assert_eq!(
                a1, a2,
                "seed {seed}, {threads} threads: answer sets differ between v1 and v2 loads"
            );
            assert_eq!(
                n1, n2,
                "seed {seed}, {threads} threads: nodes_expanded differs between v1 and v2 loads"
            );
            // Same work as evaluating the never-serialized original.
            let (a0, n0) = run(&p, &db, threads);
            assert_eq!(a0, a1, "seed {seed}, {threads} threads: original differs");
            assert_eq!(n0, n1, "seed {seed}, {threads} threads: original work differs");
        }
    }
}
