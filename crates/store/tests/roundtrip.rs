//! Property test: a random `(Interner, Database)` pair survives a snapshot
//! round trip losslessly — relations, tuples, posting indexes, active
//! domain, fresh counter, and every term name.

use wdpt_gen::Lcg;
use wdpt_model::{Database, Interner, SymbolSpace};
use wdpt_store::{decode_snapshot, snapshot_to_vec};

/// Builds a random database: a few relations of mixed arity (1–4), tuples
/// drawn from a bounded constant pool (so duplicates and shared constants
/// happen), plus stray interned symbols that no tuple mentions (vars, unused
/// constants and predicates must round-trip too).
fn random_instance(seed: u64) -> (Interner, Database) {
    let mut rng = Lcg::new(seed);
    let mut interner = Interner::new();

    let n_consts = 2 + rng.gen_range(0..40);
    let consts: Vec<_> = (0..n_consts)
        .map(|i| interner.constant(&format!("c{i}")))
        .collect();
    // Symbols outside any relation, interleaved with use.
    for i in 0..rng.gen_range(0..5) {
        interner.var(&format!("v{i}"));
    }
    for i in 0..rng.gen_range(0..3) {
        interner.pred(&format!("unused{i}"));
    }
    // A few names with spaces and unicode, as quoted constants produce.
    interner.constant("with space");
    interner.constant("caf\u{00E9}\u{2603}");

    let mut db = Database::new();
    let n_rels = rng.gen_range(0..5);
    for r in 0..n_rels {
        let pred = interner.pred(&format!("rel{r}"));
        let arity = 1 + rng.gen_range(0..4);
        let rows = rng.gen_range(0..60);
        for _ in 0..rows {
            let tuple: Vec<_> = (0..arity)
                .map(|_| consts[rng.gen_range(0..consts.len())])
                .collect();
            db.insert(pred, tuple); // duplicates silently dropped
        }
        if rng.gen_bool(0.5) {
            // Half the relations have indexes built pre-snapshot; the
            // snapshot must not care which.
            if let Some(rel) = db.relation(pred) {
                rel.build_all_indexes();
            }
        }
    }
    // Fresh names bump the counter, which must round-trip.
    for _ in 0..rng.gen_range(0..4) {
        interner.fresh_var("f");
    }
    (interner, db)
}

fn assert_equal(seed: u64, a_int: &Interner, a_db: &Database, b_int: &Interner, b_db: &Database) {
    assert_eq!(a_int.len(), b_int.len(), "seed {seed}: symbol count");
    assert_eq!(
        a_int.fresh_counter(),
        b_int.fresh_counter(),
        "seed {seed}: fresh counter"
    );
    let a_syms: Vec<(SymbolSpace, &str)> = a_int.symbols().collect();
    let b_syms: Vec<(SymbolSpace, &str)> = b_int.symbols().collect();
    assert_eq!(a_syms, b_syms, "seed {seed}: dictionary");

    assert_eq!(a_db.size(), b_db.size(), "seed {seed}: tuple count");
    assert_eq!(
        a_db.active_domain(),
        b_db.active_domain(),
        "seed {seed}: active domain"
    );
    assert_eq!(
        a_db.predicate_count(),
        b_db.predicate_count(),
        "seed {seed}: relation count"
    );
    for (pred, rel) in a_db.relations() {
        let brel = b_db
            .relation(pred)
            .unwrap_or_else(|| panic!("seed {seed}: relation {pred:?} missing after reload"));
        assert_eq!(rel.arity(), brel.arity(), "seed {seed}: arity");
        let mut at: Vec<_> = rel.tuples().collect();
        let mut bt: Vec<_> = brel.tuples().collect();
        at.sort_unstable();
        bt.sort_unstable();
        assert_eq!(at, bt, "seed {seed}: tuples of {pred:?}");
        // Postings answer identically to a fresh build.
        for col in 0..rel.arity() {
            assert!(
                brel.built_column_index(col).is_some(),
                "seed {seed}: column {col} index not installed on load"
            );
            for c in a_db.active_domain() {
                assert_eq!(
                    rel.posting_len(col, *c),
                    brel.posting_len(col, *c),
                    "seed {seed}: posting length col {col}"
                );
            }
        }
    }
}

#[test]
fn random_databases_round_trip_losslessly() {
    for seed in 0..40u64 {
        let (interner, db) = random_instance(seed ^ 0x5EED_BA5E);
        let bytes = snapshot_to_vec(&interner, &db).unwrap();
        let (i2, db2) =
            decode_snapshot(&bytes).unwrap_or_else(|e| panic!("seed {seed}: decode failed: {e}"));
        assert_equal(seed, &interner, &db, &i2, &db2);

        // And the round trip is a fixed point: re-encoding the decoded pair
        // reproduces the bytes exactly.
        assert_eq!(
            bytes,
            snapshot_to_vec(&i2, &db2).unwrap(),
            "seed {seed}: re-encode differs"
        );
    }
}

#[test]
fn queries_answer_identically_after_reload() {
    // Beyond structural equality: probe `matching` through bound columns on
    // both sides.
    let (mut interner, db) = random_instance(0xABCD);
    let bytes = snapshot_to_vec(&interner, &db).unwrap();
    let (_, db2) = decode_snapshot(&bytes).unwrap();
    let consts: Vec<_> = db.active_domain().iter().copied().collect();
    for (pred, rel) in db.relations() {
        let rel2 = db2.relation(pred).unwrap();
        for c in consts.iter().take(10) {
            for col in 0..rel.arity() {
                let mut probe = vec![None; rel.arity()];
                probe[col] = Some(*c);
                let mut a: Vec<_> = rel.matching(&probe).collect();
                let mut b: Vec<_> = rel2.matching(&probe).collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "probe col {col}");
            }
        }
    }
    // Loading must not disturb the interner's ability to mint fresh names.
    let f1 = interner.fresh_var("q");
    let (mut i2, _) = decode_snapshot(&bytes).unwrap();
    let f2 = i2.fresh_var("q");
    assert_eq!(interner.name(f1.0), i2.name(f2.0));
}
