//! End-to-end tests of the `wdpt-store` binary: the empty-delta-chain
//! `apply` no-op and the `gen-synth` / `build` determinism path that CI's
//! store_smoke job relies on.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_wdpt-store")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("spawn wdpt-store")
}

fn run_ok(args: &[&str]) -> String {
    let out = run(args);
    assert!(
        out.status.success(),
        "wdpt-store {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("wdpt-store-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn s(p: &Path) -> &str {
    p.to_str().expect("utf-8 path")
}

#[test]
fn apply_with_no_deltas_is_a_verified_byte_identical_copy() {
    let dir = TempDir::new("apply-noop");
    let input = dir.path("in.nt");
    let base = dir.path("base.snap");
    let copy = dir.path("copy.snap");
    run_ok(&["gen-music", "20x3", s(&input), "--seed", "11"]);
    run_ok(&["build", s(&input), s(&base)]);

    // No --delta flags at all: must succeed (the seed CLI rejected this)
    // and write exactly the bytes of BASE after a full verified decode.
    let stdout = run_ok(&["apply", s(&base), s(&copy)]);
    assert!(stdout.contains("applied 0 deltas"), "stdout: {stdout}");
    let a = std::fs::read(&base).unwrap();
    let b = std::fs::read(&copy).unwrap();
    assert!(!a.is_empty() && a == b, "re-encode was not byte-identical");

    // A corrupt base must still fail with the data exit code (1), proving
    // the no-delta path verifies rather than blindly copying.
    let mut bytes = std::fs::read(&base).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    let bad = dir.path("bad.snap");
    std::fs::write(&bad, &bytes).unwrap();
    let out = run(&["apply", s(&bad), s(&dir.path("never.snap"))]);
    assert_eq!(out.status.code(), Some(1), "corruption must exit 1");
}

#[test]
fn gen_synth_streams_deterministic_nt_and_builds_identical_snapshots() {
    let dir = TempDir::new("gen-synth");
    let a = dir.path("a.nt");
    let b = dir.path("b.nt");
    run_ok(&["gen-synth", "5000", s(&a), "--seed", "3"]);
    run_ok(&["gen-synth", "5000", s(&b), "--seed", "3"]);
    let bytes_a = std::fs::read(&a).unwrap();
    assert_eq!(bytes_a, std::fs::read(&b).unwrap(), "same seed, same bytes");
    assert_eq!(bytes_a.iter().filter(|&&c| c == b'\n').count(), 5000);

    // Different seed, different stream.
    let c = dir.path("c.nt");
    run_ok(&["gen-synth", "5000", s(&c), "--seed", "4"]);
    assert_ne!(bytes_a, std::fs::read(&c).unwrap());

    // The CI determinism check in miniature: build the same input at
    // --threads 1 and --threads 8 and compare snapshots bytewise.
    let snap1 = dir.path("t1.snap");
    let snap8 = dir.path("t8.snap");
    run_ok(&["build", s(&a), s(&snap1), "--threads", "1"]);
    run_ok(&[
        "build",
        s(&a),
        s(&snap8),
        "--threads",
        "8",
        "--chunk-lines",
        "256",
    ]);
    assert_eq!(
        std::fs::read(&snap1).unwrap(),
        std::fs::read(&snap8).unwrap(),
        "thread count changed snapshot bytes"
    );
    run_ok(&["verify", s(&snap8)]);
}

#[test]
fn inspect_json_covers_snapshots_and_delta_files() {
    let dir = TempDir::new("inspect-json");
    let base_in = dir.path("base.nt");
    let update_in = dir.path("update.nt");
    let base = dir.path("base.snap");
    let delta = dir.path("d1.wdpt");
    run_ok(&["gen-music", "10x2", s(&base_in), "--seed", "7"]);
    run_ok(&["build", s(&base_in), s(&base)]);
    run_ok(&["gen-music", "3x1", s(&update_in), "--seed", "8"]);
    run_ok(&["delta", s(&base), s(&update_in), s(&delta)]);

    // Snapshot: one JSON document with the header and per-relation rows.
    let stdout = run_ok(&["inspect", s(&base), "--json"]);
    let doc = wdpt_obs::Json::parse(stdout.trim()).expect("inspect --json parses");
    assert_eq!(
        doc.get("kind").and_then(wdpt_obs::Json::as_str),
        Some("snapshot")
    );
    let tuples = doc.get("tuples").and_then(wdpt_obs::Json::as_num).unwrap();
    assert!(tuples > 0.0);
    let rels = doc
        .get("relations")
        .and_then(wdpt_obs::Json::as_arr)
        .expect("relations array");
    assert!(!rels.is_empty());
    let rows: f64 = rels
        .iter()
        .map(|r| r.get("rows").and_then(wdpt_obs::Json::as_num).unwrap())
        .sum();
    assert_eq!(rows, tuples, "per-relation rows must sum to the header");
    assert!(rels[0]
        .get("name")
        .and_then(wdpt_obs::Json::as_str)
        .is_some());

    // Delta file: inspect falls back to the delta header instead of
    // failing with "apply it to its base first".
    let stdout = run_ok(&["inspect", s(&delta), "--json"]);
    let doc = wdpt_obs::Json::parse(stdout.trim()).expect("delta inspect parses");
    assert_eq!(
        doc.get("kind").and_then(wdpt_obs::Json::as_str),
        Some("delta")
    );
    assert!(
        doc.get("inserted")
            .and_then(wdpt_obs::Json::as_num)
            .unwrap()
            > 0.0
    );
    assert_eq!(
        doc.get("base_hash")
            .and_then(wdpt_obs::Json::as_str)
            .map(str::len),
        Some(16),
        "base hash renders as 16 hex digits"
    );

    // The human-readable delta fallback works too.
    let stdout = run_ok(&["inspect", s(&delta)]);
    assert!(stdout.contains("delta v"), "stdout: {stdout}");
    assert!(stdout.contains("inserted tuples"), "stdout: {stdout}");
}
