//! End-to-end tests of the `wdpt-store` binary: the empty-delta-chain
//! `apply` no-op and the `gen-synth` / `build` determinism path that CI's
//! store_smoke job relies on.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_wdpt-store")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("spawn wdpt-store")
}

fn run_ok(args: &[&str]) -> String {
    let out = run(args);
    assert!(
        out.status.success(),
        "wdpt-store {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("wdpt-store-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn s(p: &Path) -> &str {
    p.to_str().expect("utf-8 path")
}

#[test]
fn apply_with_no_deltas_is_a_verified_byte_identical_copy() {
    let dir = TempDir::new("apply-noop");
    let input = dir.path("in.nt");
    let base = dir.path("base.snap");
    let copy = dir.path("copy.snap");
    run_ok(&["gen-music", "20x3", s(&input), "--seed", "11"]);
    run_ok(&["build", s(&input), s(&base)]);

    // No --delta flags at all: must succeed (the seed CLI rejected this)
    // and write exactly the bytes of BASE after a full verified decode.
    let stdout = run_ok(&["apply", s(&base), s(&copy)]);
    assert!(stdout.contains("applied 0 deltas"), "stdout: {stdout}");
    let a = std::fs::read(&base).unwrap();
    let b = std::fs::read(&copy).unwrap();
    assert!(!a.is_empty() && a == b, "re-encode was not byte-identical");

    // A corrupt base must still fail with the data exit code (1), proving
    // the no-delta path verifies rather than blindly copying.
    let mut bytes = std::fs::read(&base).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    let bad = dir.path("bad.snap");
    std::fs::write(&bad, &bytes).unwrap();
    let out = run(&["apply", s(&bad), s(&dir.path("never.snap"))]);
    assert_eq!(out.status.code(), Some(1), "corruption must exit 1");
}

#[test]
fn gen_synth_streams_deterministic_nt_and_builds_identical_snapshots() {
    let dir = TempDir::new("gen-synth");
    let a = dir.path("a.nt");
    let b = dir.path("b.nt");
    run_ok(&["gen-synth", "5000", s(&a), "--seed", "3"]);
    run_ok(&["gen-synth", "5000", s(&b), "--seed", "3"]);
    let bytes_a = std::fs::read(&a).unwrap();
    assert_eq!(bytes_a, std::fs::read(&b).unwrap(), "same seed, same bytes");
    assert_eq!(bytes_a.iter().filter(|&&c| c == b'\n').count(), 5000);

    // Different seed, different stream.
    let c = dir.path("c.nt");
    run_ok(&["gen-synth", "5000", s(&c), "--seed", "4"]);
    assert_ne!(bytes_a, std::fs::read(&c).unwrap());

    // The CI determinism check in miniature: build the same input at
    // --threads 1 and --threads 8 and compare snapshots bytewise.
    let snap1 = dir.path("t1.snap");
    let snap8 = dir.path("t8.snap");
    run_ok(&["build", s(&a), s(&snap1), "--threads", "1"]);
    run_ok(&[
        "build",
        s(&a),
        s(&snap8),
        "--threads",
        "8",
        "--chunk-lines",
        "256",
    ]);
    assert_eq!(
        std::fs::read(&snap1).unwrap(),
        std::fs::read(&snap8).unwrap(),
        "thread count changed snapshot bytes"
    );
    run_ok(&["verify", s(&snap8)]);
}
