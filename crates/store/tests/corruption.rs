//! Corruption tests: every truncation and every single-byte flip of a valid
//! snapshot must decode to a typed [`StoreError`] — never a panic, never a
//! silently wrong database.

use wdpt_model::{Database, Interner};
use wdpt_store::{decode_snapshot, inspect_snapshot, snapshot_to_vec, StoreError};

fn sample_snapshot() -> Vec<u8> {
    let mut i = Interner::new();
    let e = i.pred("edge");
    let n = i.pred("node");
    let (a, b, c) = (i.constant("a"), i.constant("b"), i.constant("caf\u{00E9}"));
    i.var("x");
    let mut db = Database::new();
    db.insert(e, vec![a, b]);
    db.insert(e, vec![b, c]);
    db.insert(e, vec![a, c]);
    db.insert(n, vec![a]);
    db.insert(n, vec![b]);
    snapshot_to_vec(&i, &db).unwrap()
}

#[test]
fn every_truncation_is_a_typed_error() {
    let bytes = sample_snapshot();
    for len in 0..bytes.len() {
        let truncated = &bytes[..len];
        match decode_snapshot(truncated) {
            Ok(_) => panic!("decode of {len}-byte prefix succeeded"),
            Err(
                StoreError::Truncated { .. }
                | StoreError::BadMagic
                | StoreError::ChecksumMismatch { .. }
                | StoreError::Malformed { .. },
            ) => {}
            Err(other) => panic!("prefix of {len} bytes gave unexpected error: {other}"),
        }
    }
}

#[test]
fn every_single_byte_flip_is_a_typed_error() {
    let bytes = sample_snapshot();
    let mut mutated = bytes.clone();
    for i in 0..bytes.len() {
        for bit in [0x01u8, 0x80u8] {
            mutated[i] ^= bit;
            match decode_snapshot(&mutated) {
                // Flipping bytes can only legitimately surface as one of
                // the corruption variants; the magic and version fields get
                // their dedicated errors.
                Err(
                    StoreError::BadMagic
                    | StoreError::UnsupportedVersion(_)
                    | StoreError::Truncated { .. }
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::Malformed { .. },
                ) => {}
                Err(other) => panic!("flip at byte {i}: unexpected error {other}"),
                Ok(_) => panic!("flip at byte {i} went undetected"),
            }
            mutated[i] ^= bit;
        }
    }
    assert_eq!(mutated, bytes, "mutation loop must restore the input");
}

#[test]
fn flips_in_section_bodies_hit_the_checksum() {
    // Past magic+version, a flip lands inside some section's checksummed
    // span — tag, length, payload, or the CRC itself — and every case must
    // be a checksum mismatch (lengths can also surface as truncation when
    // the inflated length overruns the file).
    let bytes = sample_snapshot();
    let mut mutated = bytes.clone();
    let mut mismatches = 0usize;
    for i in 12..bytes.len() {
        mutated[i] ^= 0x40;
        match decode_snapshot(&mutated) {
            Err(StoreError::ChecksumMismatch { .. }) => mismatches += 1,
            Err(StoreError::Truncated { .. }) => {}
            Err(other) => panic!("flip at byte {i}: unexpected error {other}"),
            Ok(_) => panic!("flip at byte {i} went undetected"),
        }
        mutated[i] ^= 0x40;
    }
    assert!(
        mismatches > (bytes.len() - 12) / 2,
        "most section flips should be checksum mismatches, got {mismatches}"
    );
}

#[test]
fn appended_garbage_is_rejected() {
    let mut bytes = sample_snapshot();
    bytes.push(0);
    match decode_snapshot(&bytes) {
        Err(StoreError::Malformed { section, .. }) => assert_eq!(section, "end"),
        other => panic!("expected Malformed end, got {other:?}"),
    }
}

#[test]
fn truncated_and_flipped_snapshots_never_pass_inspect_silently_wrong() {
    // inspect (CRC walk only) must also flag every flip: it reads the same
    // checksums. It cannot catch semantic damage that decode validates, but
    // nothing may panic.
    let bytes = sample_snapshot();
    assert!(inspect_snapshot(&bytes).is_ok());
    let mut mutated = bytes.clone();
    for i in 0..bytes.len() {
        mutated[i] ^= 0xFF;
        assert!(inspect_snapshot(&mutated).is_err(), "flip at byte {i}");
        mutated[i] ^= 0xFF;
    }
    for len in 0..bytes.len() {
        assert!(inspect_snapshot(&bytes[..len]).is_err(), "prefix {len}");
    }
}

#[test]
fn empty_and_tiny_inputs_are_handled() {
    assert!(matches!(
        decode_snapshot(&[]),
        Err(StoreError::Truncated { .. })
    ));
    assert!(matches!(
        decode_snapshot(b"WDPT"),
        Err(StoreError::Truncated { .. })
    ));
    assert!(matches!(
        decode_snapshot(b"NOTASNAPSHOT"),
        Err(StoreError::BadMagic)
    ));
}
