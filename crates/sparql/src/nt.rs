//! A lenient, line-oriented N-Triples parser.
//!
//! One triple per line: `<s> <p> <o> .` — IRIs in angle brackets, literals
//! in double quotes, bare tokens also tolerated (the workspace generators
//! emit bare tokens). Shared by the `wdpt-serve` text-loading fallback and
//! the `wdpt-store` parallel bulk loader, so both layers accept exactly the
//! same dialect. Deliberate deviations from strict W3C N-Triples:
//!
//! * Bare (unquoted, unbracketed) tokens are accepted as terms.
//! * Datatype (`^^<...>`) and language (`@xx`) suffixes after a literal are
//!   parsed and discarded; the trailing `.` is optional.
//! * `#` comment lines and blank lines are skipped; CRLF line endings are
//!   handled (the scanner trims trailing ASCII whitespace).
//! * `\uXXXX` and `\UXXXXXXXX` escapes are decoded in **both** IRIs and
//!   literals, alongside the usual `\n \t \r \" \\` in literals.
//!
//! The parser is pure string → string so it can run on worker threads
//! without touching an [`crate::TripleStore`]'s interner; [`parse_nt`]
//! wires it to a store for callers that hold the interner anyway.

use wdpt_model::Interner;

/// Decodes a `\uXXXX` (4 hex digits) or `\UXXXXXXXX` (8 hex digits) escape
/// starting at `bytes[pos]` (the `u`/`U` byte, after the backslash). Returns
/// the scalar and the position just past the escape.
fn unicode_escape(bytes: &[u8], pos: usize) -> Result<(char, usize), String> {
    let digits = match bytes[pos] {
        b'u' => 4,
        b'U' => 8,
        _ => unreachable!("caller dispatches on u/U"),
    };
    let end = pos + 1 + digits;
    if end > bytes.len() {
        return Err(format!("truncated \\{} escape", bytes[pos] as char));
    }
    let hex = std::str::from_utf8(&bytes[pos + 1..end])
        .map_err(|_| "non-ascii in unicode escape".to_string())?;
    let code = u32::from_str_radix(hex, 16).map_err(|_| format!("bad hex in escape {hex:?}"))?;
    let c = char::from_u32(code).ok_or_else(|| format!("escape U+{code:04X} is not a scalar"))?;
    Ok((c, end))
}

/// One parsed N-Triples term, with how far the scanner advanced.
fn nt_term(bytes: &[u8], mut pos: usize) -> Result<(String, usize), String> {
    while pos < bytes.len() && (bytes[pos] as char).is_whitespace() {
        pos += 1;
    }
    if pos >= bytes.len() {
        return Err("expected a term, found end of line".into());
    }
    match bytes[pos] {
        b'<' => {
            let mut out = String::new();
            let mut p = pos + 1;
            loop {
                // Bulk-copy the run up to the next delimiter or escape; the
                // common IRI has no escapes and takes one slice copy total.
                let run = p;
                while p < bytes.len() && bytes[p] != b'>' && bytes[p] != b'\\' {
                    p += 1;
                }
                if p > run {
                    let s = std::str::from_utf8(&bytes[run..p])
                        .map_err(|_| "invalid utf-8 in IRI".to_string())?;
                    out.push_str(s);
                }
                if p >= bytes.len() {
                    return Err(format!("unterminated IRI at byte {pos}"));
                }
                if bytes[p] == b'>' {
                    return Ok((out, p + 1));
                }
                // IRIs only allow the unicode escapes, not \n etc.
                match bytes.get(p + 1) {
                    Some(b'u') | Some(b'U') => {
                        let (c, next) = unicode_escape(bytes, p + 1)?;
                        out.push(c);
                        p = next;
                    }
                    _ => return Err(format!("bad IRI escape at byte {p}")),
                }
            }
        }
        b'"' => {
            let mut out = String::new();
            let mut p = pos + 1;
            loop {
                // Bulk-copy up to the next quote or escape (one slice copy
                // for the common escape-free literal).
                let run = p;
                while p < bytes.len() && bytes[p] != b'"' && bytes[p] != b'\\' {
                    p += 1;
                }
                if p > run {
                    let s = std::str::from_utf8(&bytes[run..p])
                        .map_err(|_| "invalid utf-8 in literal".to_string())?;
                    out.push_str(s);
                }
                if p >= bytes.len() {
                    return Err(format!("unterminated literal at byte {pos}"));
                }
                if bytes[p] == b'"' {
                    p += 1;
                    break;
                }
                let esc = *bytes
                    .get(p + 1)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                match esc {
                    b'u' | b'U' => {
                        let (c, next) = unicode_escape(bytes, p + 1)?;
                        out.push(c);
                        p = next;
                    }
                    other => {
                        out.push(match other {
                            b'n' => '\n',
                            b't' => '\t',
                            b'r' => '\r',
                            b'"' => '"',
                            b'\\' => '\\',
                            other => other as char,
                        });
                        p += 2;
                    }
                }
            }
            // Skip a datatype (^^<...>) or language (@xx) suffix.
            if bytes.get(p) == Some(&b'^') && bytes.get(p + 1) == Some(&b'^') {
                p += 2;
                if bytes.get(p) == Some(&b'<') {
                    while p < bytes.len() && bytes[p] != b'>' {
                        p += 1;
                    }
                    p = (p + 1).min(bytes.len());
                }
            } else if bytes.get(p) == Some(&b'@') {
                while p < bytes.len() && !(bytes[p] as char).is_whitespace() {
                    p += 1;
                }
            }
            Ok((out, p))
        }
        _ => {
            let start = pos;
            while pos < bytes.len() && !(bytes[pos] as char).is_whitespace() {
                pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..pos])
                .map_err(|_| "invalid utf-8 in token".to_string())?;
            Ok((text.to_string(), pos))
        }
    }
}

/// Parses one N-Triples line into `(subject, predicate, object)`.
/// `Ok(None)` for blank and comment lines. The line may carry its trailing
/// `\n` / `\r\n` — terminators are trimmed before scanning.
pub fn parse_nt_line(line: &str) -> Result<Option<(String, String, String)>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let bytes = trimmed.as_bytes();
    let (s, pos) = nt_term(bytes, 0)?;
    let (p, pos) = nt_term(bytes, pos)?;
    let (o, pos) = nt_term(bytes, pos)?;
    // Anything after the object must be the statement terminator.
    let rest = std::str::from_utf8(&bytes[pos..]).unwrap_or("").trim();
    if !rest.is_empty() && rest != "." {
        return Err(format!("trailing content {rest:?} after object"));
    }
    // A bare-token "object" that is just the terminator means a 2-term line.
    if o == "." {
        return Err("line has fewer than three terms".into());
    }
    Ok(Some((s, p, o)))
}

/// Parses N-Triples text into a store. Fails on the first malformed line,
/// reporting its 1-based number.
pub fn parse_nt(interner: &mut Interner, text: &str) -> Result<crate::TripleStore, String> {
    let mut ts = crate::TripleStore::new();
    for (n, line) in text.lines().enumerate() {
        match parse_nt_line(line) {
            Ok(None) => {}
            Ok(Some((s, p, o))) => {
                ts.insert_str(interner, &s, &p, &o);
            }
            Err(e) => return Err(format!("line {}: {e}", n + 1)),
        }
    }
    Ok(ts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripleStore;

    #[test]
    fn parses_nt_with_iris_literals_and_bare_tokens() {
        let mut i = Interner::new();
        let text = r#"
# the Example 2 catalog
<Swim> <recorded_by> <Caribou> .
<Swim> <published> "after_2010" .
Swim NME_rating "2"^^<http://www.w3.org/2001/XMLSchema#integer> .
<Our_love> <title> "Our \"Love\"@en"@en .
"#;
        let ts = parse_nt(&mut i, text).unwrap();
        assert_eq!(ts.len(), 4);
        let db = ts.database();
        assert_eq!(db.size(), 4);
        // IRIs and bare tokens intern to the same constant space.
        let swim = i.constant("Swim");
        let p = TripleStore::pred(&mut i);
        let rel = db.relation(p).unwrap();
        assert!(rel.tuples().any(|t| t[0] == swim));
    }

    #[test]
    fn rejects_short_and_trailing_garbage_lines() {
        let mut i = Interner::new();
        assert!(parse_nt(&mut i, "<a> <b> .").is_err());
        assert!(parse_nt(&mut i, "<a> <b> <c> <d> .").is_err());
        assert!(parse_nt(&mut i, "<a> <b <c> .").is_err());
    }

    #[test]
    fn decodes_unicode_escapes_in_literals_and_iris() {
        // The Rust raw strings below contain literal backslashes, so the
        // parser sees unicode escape sequences and must decode them.
        let line = r#"<caf\u00E9> <says> "\u2022 bullet \U0001F600" ."#;
        let (s, _, o) = parse_nt_line(line).unwrap().unwrap();
        assert_eq!(s, "caf\u{00E9}");
        assert_eq!(o, "\u{2022} bullet \u{1F600}");
        // Escaped and raw spellings of an IRI decode to the same string.
        let (s2, _, _) = parse_nt_line("<caf\u{00E9}> <says> <x> .")
            .unwrap()
            .unwrap();
        assert_eq!(s2, s);
        // An escape mixed into a literal body.
        let (_, _, o3) = parse_nt_line(r#"<a> <b> "snow\u2603man" ."#)
            .unwrap()
            .unwrap();
        assert_eq!(o3, "snow\u{2603}man");
    }

    #[test]
    fn rejects_malformed_unicode_escapes() {
        // Too few digits, bad hex, a surrogate, and a non-unicode IRI escape.
        assert!(parse_nt_line(r#"<a> <b> "\u12" ."#).is_err());
        assert!(parse_nt_line(r#"<a> <b> "\uZZZZ" ."#).is_err());
        assert!(parse_nt_line(r#"<a> <b> "\uD800" ."#).is_err());
        assert!(parse_nt_line(r#"<a\n> <b> <c> ."#).is_err());
    }

    #[test]
    fn handles_crlf_terminated_files() {
        let mut i = Interner::new();
        let text = "<a> <b> <c> .\r\n# comment\r\n\r\n<d> <e> \"f\" .\r\n";
        let ts = parse_nt(&mut i, text).unwrap();
        assert_eq!(ts.len(), 2);
        // The literal must not have absorbed the \r.
        assert!(i.symbols().all(|(_, name)| !name.contains('\r')));
        // A raw line with its terminator still attached parses too (the
        // BufReader-based loaders hand lines over with `\r\n` intact).
        let parsed = parse_nt_line("<x> <y> <z> .\r\n").unwrap().unwrap();
        assert_eq!(parsed, ("x".into(), "y".into(), "z".into()));
    }

    #[test]
    fn comment_and_blank_edge_cases() {
        // Whitespace-only lines, comments with leading whitespace, a
        // comment as the last line without a terminator, and a `#` inside
        // a literal (which is data, not a comment).
        let mut i = Interner::new();
        let text = "   \n\t\n  # indented comment\n<a> <b> \"#not a comment\" .\n#tail";
        let ts = parse_nt(&mut i, text).unwrap();
        assert_eq!(ts.len(), 1);
        let c = i.constant("#not a comment");
        let p = TripleStore::pred(&mut i);
        assert!(ts
            .database()
            .relation(p)
            .unwrap()
            .tuples()
            .any(|t| t[2] == c));
    }

    #[test]
    fn trailing_dot_is_optional() {
        assert_eq!(
            parse_nt_line("<a> <b> <c>").unwrap().unwrap(),
            ("a".into(), "b".into(), "c".into())
        );
    }
}
