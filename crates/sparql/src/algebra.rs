//! The {AND, OPT} pattern algebra and its WDPT translation.
//!
//! Patterns follow the algebraic notation of Pérez et al. ([18] in the
//! paper): a pattern is a triple pattern, `(P₁ AND P₂)`, or `(P₁ OPT P₂)`.
//! A pattern is *well-designed* if for every sub-pattern `O = (P₁ OPT P₂)`
//! and every variable `v` of `P₂`: if `v` occurs outside `O`, it also
//! occurs in `P₁`. Well-designed patterns admit the *pattern-tree normal
//! form* of Letelier et al. ([17]): rewrite `(P₁ OPT P₂) AND P₃ ⇒
//! (P₁ AND P₃) OPT P₂` to a fixpoint, then read off the tree — AND-groups
//! become node labels, OPT-nesting becomes the child relation. That
//! translation ([`GraphPattern::to_wdpt`]) and its inverse
//! ([`GraphPattern::from_wdpt`]) connect this front end to the relational
//! WDPT machinery of `wdpt-core`.

use crate::triples::TripleStore;
use std::collections::BTreeSet;
use wdpt_core::{Wdpt, WdptBuilder};
use wdpt_model::{Atom, Database, Interner, Mapping, Term, Var};

/// A SPARQL triple pattern `(s, p, o)` over variables and constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject.
    pub s: Term,
    /// Predicate.
    pub p: Term,
    /// Object.
    pub o: Term,
}

impl TriplePattern {
    /// The relational atom `triple(s, p, o)`.
    pub fn to_atom(&self, interner: &mut Interner) -> Atom {
        Atom::new(TripleStore::pred(interner), vec![self.s, self.p, self.o])
    }

    /// Recovers a triple pattern from a `triple/3` atom.
    pub fn from_atom(atom: &Atom) -> Option<TriplePattern> {
        if atom.args.len() != 3 {
            return None;
        }
        Some(TriplePattern {
            s: atom.args[0],
            p: atom.args[1],
            o: atom.args[2],
        })
    }

    fn vars(&self, out: &mut BTreeSet<Var>) {
        for t in [self.s, self.p, self.o] {
            if let Term::Var(v) = t {
                out.insert(v);
            }
        }
    }

    /// Renders as `(s, p, o)`.
    pub fn display(&self, interner: &Interner) -> String {
        format!(
            "({}, {}, {})",
            self.s.display(interner),
            self.p.display(interner),
            self.o.display(interner)
        )
    }
}

/// An {AND, OPT} graph pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphPattern {
    /// A triple pattern.
    Triple(TriplePattern),
    /// Conjunction `(P₁ AND P₂)`.
    And(Box<GraphPattern>, Box<GraphPattern>),
    /// Optional matching `(P₁ OPT P₂)` — the left-outer-join.
    Opt(Box<GraphPattern>, Box<GraphPattern>),
}

/// Errors of the algebra layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// The pattern violates the well-designedness condition on `var`.
    NotWellDesigned(Var),
    /// A WDPT with a non-`triple/3` atom cannot be rendered as SPARQL.
    NotAnRdfTree,
    /// A projection variable does not occur in the pattern.
    UnknownSelectVar(Var),
}

impl std::fmt::Display for SparqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparqlError::NotWellDesigned(v) => {
                write!(f, "pattern is not well-designed: variable {v} leaks")
            }
            SparqlError::NotAnRdfTree => write!(f, "WDPT contains non-triple atoms"),
            SparqlError::UnknownSelectVar(v) => {
                write!(f, "SELECT variable {v} does not occur in the pattern")
            }
        }
    }
}

impl std::error::Error for SparqlError {}

impl GraphPattern {
    /// All variables of the pattern.
    pub fn variables(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            GraphPattern::Triple(t) => t.vars(out),
            GraphPattern::And(a, b) | GraphPattern::Opt(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Checks the well-designedness condition of [18]; returns an offending
    /// variable on failure.
    pub fn well_designedness_violation(&self) -> Option<Var> {
        // For every OPT sub-pattern (P1 OPT P2): vars(P2) ∖ vars(P1) must
        // not occur outside the OPT sub-pattern. We walk the tree carrying
        // the multiset of variables occurring OUTSIDE the current node.
        fn walk(p: &GraphPattern, outside: &BTreeSet<Var>) -> Option<Var> {
            match p {
                GraphPattern::Triple(_) => None,
                GraphPattern::And(a, b) => {
                    let mut oa = outside.clone();
                    b.collect_vars(&mut oa);
                    if let Some(v) = walk(a, &oa) {
                        return Some(v);
                    }
                    let mut ob = outside.clone();
                    a.collect_vars(&mut ob);
                    walk(b, &ob)
                }
                GraphPattern::Opt(a, b) => {
                    let va = a.variables();
                    let vb = b.variables();
                    for &v in vb.difference(&va) {
                        if outside.contains(&v) {
                            return Some(v);
                        }
                    }
                    let mut oa = outside.clone();
                    b.collect_vars(&mut oa);
                    if let Some(v) = walk(a, &oa) {
                        return Some(v);
                    }
                    let mut ob = outside.clone();
                    a.collect_vars(&mut ob);
                    walk(b, &ob)
                }
            }
        }
        walk(self, &BTreeSet::new())
    }

    /// True iff the pattern is well-designed.
    pub fn is_well_designed(&self) -> bool {
        self.well_designedness_violation().is_none()
    }

    /// Rewrites into OPT normal form (no OPT below an AND), valid for
    /// well-designed patterns: `(P₁ OPT P₂) AND P₃ ⇒ (P₁ AND P₃) OPT P₂`.
    pub fn opt_normal_form(&self) -> GraphPattern {
        match self {
            GraphPattern::Triple(_) => self.clone(),
            GraphPattern::Opt(a, b) => {
                GraphPattern::Opt(Box::new(a.opt_normal_form()), Box::new(b.opt_normal_form()))
            }
            GraphPattern::And(a, b) => {
                let a = a.opt_normal_form();
                let b = b.opt_normal_form();
                match (a, b) {
                    (GraphPattern::Opt(a1, a2), b) => GraphPattern::Opt(
                        Box::new(GraphPattern::And(a1, Box::new(b)).opt_normal_form()),
                        a2,
                    ),
                    (a, GraphPattern::Opt(b1, b2)) => GraphPattern::Opt(
                        Box::new(GraphPattern::And(Box::new(a), b1).opt_normal_form()),
                        b2,
                    ),
                    (a, b) => GraphPattern::And(Box::new(a), Box::new(b)),
                }
            }
        }
    }

    /// Translates a well-designed pattern into a WDPT with the given free
    /// variables (`None` = projection-free, all variables free).
    pub fn to_wdpt(
        &self,
        select: Option<&[Var]>,
        interner: &mut Interner,
    ) -> Result<Wdpt, SparqlError> {
        if let Some(v) = self.well_designedness_violation() {
            return Err(SparqlError::NotWellDesigned(v));
        }
        let vars = self.variables();
        let free: Vec<Var> = match select {
            Some(sel) => {
                for &v in sel {
                    if !vars.contains(&v) {
                        return Err(SparqlError::UnknownSelectVar(v));
                    }
                }
                sel.to_vec()
            }
            None => vars.into_iter().collect(),
        };
        let nf = self.opt_normal_form();
        // Read the tree off the normal form.
        struct Node {
            atoms: Vec<Atom>,
            children: Vec<Node>,
        }
        fn collect(p: &GraphPattern, interner: &mut Interner) -> Node {
            match p {
                GraphPattern::Triple(t) => Node {
                    atoms: vec![t.to_atom(interner)],
                    children: Vec::new(),
                },
                GraphPattern::And(a, b) => {
                    let mut na = collect(a, interner);
                    let nb = collect(b, interner);
                    debug_assert!(
                        na.children.is_empty() && nb.children.is_empty(),
                        "OPT below AND survived normalization"
                    );
                    na.atoms.extend(nb.atoms);
                    Node {
                        atoms: na.atoms,
                        children: Vec::new(),
                    }
                }
                GraphPattern::Opt(a, b) => {
                    let mut na = collect(a, interner);
                    let nb = collect(b, interner);
                    na.children.push(nb);
                    na
                }
            }
        }
        let root = collect(&nf, interner);
        let mut builder = WdptBuilder::new(root.atoms.clone());
        fn attach(builder: &mut WdptBuilder, parent: usize, node: &Node) {
            for child in &node.children {
                let id = builder.child(parent, child.atoms.clone());
                attach(builder, id, child);
            }
        }
        attach(&mut builder, 0, &root);
        builder.build(free).map_err(|e| match e {
            wdpt_core::WdptError::NotWellDesigned(v) => SparqlError::NotWellDesigned(v),
            wdpt_core::WdptError::FreeVarNotMentioned(v)
            | wdpt_core::WdptError::DuplicateFreeVar(v) => SparqlError::UnknownSelectVar(v),
        })
    }

    /// The inverse translation: a WDPT over the `triple/3` schema back into
    /// an {AND, OPT} pattern.
    pub fn from_wdpt(p: &Wdpt) -> Result<GraphPattern, SparqlError> {
        fn of_node(p: &Wdpt, t: usize) -> Result<GraphPattern, SparqlError> {
            let mut pattern: Option<GraphPattern> = None;
            for atom in p.atoms(t) {
                let tp = TriplePattern::from_atom(atom).ok_or(SparqlError::NotAnRdfTree)?;
                let g = GraphPattern::Triple(tp);
                pattern = Some(match pattern {
                    None => g,
                    Some(acc) => GraphPattern::And(Box::new(acc), Box::new(g)),
                });
            }
            let mut pattern = pattern.ok_or(SparqlError::NotAnRdfTree)?;
            for &c in p.children(t) {
                let sub = of_node(p, c)?;
                pattern = GraphPattern::Opt(Box::new(pattern), Box::new(sub));
            }
            Ok(pattern)
        }
        of_node(p, p.root())
    }

    /// Renders the pattern with explicit parentheses, as in the paper.
    pub fn display(&self, interner: &Interner) -> String {
        match self {
            GraphPattern::Triple(t) => t.display(interner),
            GraphPattern::And(a, b) => {
                format!("({} AND {})", a.display(interner), b.display(interner))
            }
            GraphPattern::Opt(a, b) => {
                format!("({} OPT {})", a.display(interner), b.display(interner))
            }
        }
    }
}

/// A union query `P₁ UNION … UNION P_n` — the UWDPTs of Section 6. Each
/// branch is translated independently; with a `SELECT` clause, each branch
/// keeps the selected variables that occur in it (the paper does not
/// require disjuncts to share free variables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnionQuery {
    /// The union branches.
    pub branches: Vec<GraphPattern>,
    /// Projection variables; `None` means projection-free per branch.
    pub select: Option<Vec<Var>>,
}

impl UnionQuery {
    /// Translates every branch into a WDPT. Callers typically wrap the
    /// result in `wdpt_approx::Uwdpt`.
    pub fn to_wdpts(&self, interner: &mut Interner) -> Result<Vec<Wdpt>, SparqlError> {
        self.branches
            .iter()
            .map(|b| match &self.select {
                None => b.to_wdpt(None, interner),
                Some(sel) => {
                    let vars = b.variables();
                    let kept: Vec<Var> = sel.iter().copied().filter(|v| vars.contains(v)).collect();
                    b.to_wdpt(Some(&kept), interner)
                }
            })
            .collect()
    }
}

/// A query: a pattern plus an optional projection (`SELECT` clause).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparqlQuery {
    /// The {AND, OPT} pattern.
    pub pattern: GraphPattern,
    /// Projection variables; `None` means projection-free.
    pub select: Option<Vec<Var>>,
}

impl SparqlQuery {
    /// Translates to a WDPT.
    pub fn to_wdpt(&self, interner: &mut Interner) -> Result<Wdpt, SparqlError> {
        self.pattern.to_wdpt(self.select.as_deref(), interner)
    }

    /// Evaluates the query over an RDF store (exact small-scale semantics).
    pub fn evaluate(
        &self,
        store: &TripleStore,
        interner: &mut Interner,
    ) -> Result<Vec<Mapping>, SparqlError> {
        let p = self.to_wdpt(interner)?;
        Ok(wdpt_core::evaluate(&p, store.database()))
    }

    /// Evaluates over an arbitrary relational database.
    pub fn evaluate_db(
        &self,
        db: &Database,
        interner: &mut Interner,
    ) -> Result<Vec<Mapping>, SparqlError> {
        let p = self.to_wdpt(interner)?;
        Ok(wdpt_core::evaluate(&p, db))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(i: &mut Interner, s: &str, p: &str, o: &str) -> GraphPattern {
        let term = |i: &mut Interner, x: &str| -> Term {
            if let Some(name) = x.strip_prefix('?') {
                Term::Var(i.var(name))
            } else {
                Term::Const(i.constant(x))
            }
        };
        GraphPattern::Triple(TriplePattern {
            s: term(i, s),
            p: term(i, p),
            o: term(i, o),
        })
    }

    fn example1(i: &mut Interner) -> GraphPattern {
        // (((x, rec_by, y) AND (x, publ, after_2010)) OPT (x, rating, z))
        //   OPT (y, formed_in, z2)
        let a = tp(i, "?x", "recorded_by", "?y");
        let b = tp(i, "?x", "published", "after_2010");
        let c = tp(i, "?x", "NME_rating", "?z");
        let d = tp(i, "?y", "formed_in", "?z2");
        GraphPattern::Opt(
            Box::new(GraphPattern::Opt(
                Box::new(GraphPattern::And(Box::new(a), Box::new(b))),
                Box::new(c),
            )),
            Box::new(d),
        )
    }

    #[test]
    fn example1_is_well_designed_and_becomes_figure1() {
        let mut i = Interner::new();
        let pat = example1(&mut i);
        assert!(pat.is_well_designed());
        let p = pat.to_wdpt(None, &mut i).unwrap();
        // Figure 1: root with two atoms and two single-atom children.
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.atoms(0).len(), 2);
        assert_eq!(p.children(0).len(), 2);
        assert!(p.is_projection_free());
    }

    #[test]
    fn non_well_designed_pattern_is_rejected() {
        let mut i = Interner::new();
        // (a OPT b) AND c where b and c share ?z not in a: classic
        // violation.
        let a = tp(&mut i, "?x", "p", "?y");
        let b = tp(&mut i, "?x", "q", "?z");
        let c = tp(&mut i, "?z", "r", "?w");
        let pat = GraphPattern::And(
            Box::new(GraphPattern::Opt(Box::new(a), Box::new(b))),
            Box::new(c),
        );
        assert!(!pat.is_well_designed());
        assert!(matches!(
            pat.to_wdpt(None, &mut i),
            Err(SparqlError::NotWellDesigned(_))
        ));
    }

    #[test]
    fn and_over_opt_normalizes() {
        let mut i = Interner::new();
        // (a OPT b) AND c with c sharing only ?x: well-designed; the NF
        // must pull c into the root group.
        let a = tp(&mut i, "?x", "p", "?y");
        let b = tp(&mut i, "?x", "q", "?z");
        let c = tp(&mut i, "?x", "r", "?w");
        let pat = GraphPattern::And(
            Box::new(GraphPattern::Opt(Box::new(a), Box::new(b))),
            Box::new(c),
        );
        assert!(pat.is_well_designed());
        let p = pat.to_wdpt(None, &mut i).unwrap();
        assert_eq!(p.node_count(), 2);
        assert_eq!(p.atoms(0).len(), 2); // a and c grouped
        assert_eq!(p.atoms(1).len(), 1); // b optional
    }

    #[test]
    fn roundtrip_through_wdpt() {
        let mut i = Interner::new();
        let pat = example1(&mut i);
        let p = pat.to_wdpt(None, &mut i).unwrap();
        let back = GraphPattern::from_wdpt(&p).unwrap();
        // Round-trip must preserve the tree shape (and hence semantics).
        let p2 = back.to_wdpt(None, &mut i).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn evaluation_matches_example2() {
        let mut i = Interner::new();
        let mut ts = TripleStore::new();
        ts.insert_str(&mut i, "Our_love", "recorded_by", "Caribou");
        ts.insert_str(&mut i, "Our_love", "published", "after_2010");
        ts.insert_str(&mut i, "Swim", "recorded_by", "Caribou");
        ts.insert_str(&mut i, "Swim", "published", "after_2010");
        ts.insert_str(&mut i, "Swim", "NME_rating", "2");
        let q = SparqlQuery {
            pattern: example1(&mut i),
            select: None,
        };
        let answers = q.evaluate(&ts, &mut i).unwrap();
        assert_eq!(answers.len(), 2);
        let z = i.var("z");
        let two = i.constant("2");
        assert!(answers.iter().any(|m| m.get(z) == Some(two)));
    }

    #[test]
    fn selection_projects_answers() {
        let mut i = Interner::new();
        let mut ts = TripleStore::new();
        ts.insert_str(&mut i, "Swim", "recorded_by", "Caribou");
        ts.insert_str(&mut i, "Swim", "published", "after_2010");
        ts.insert_str(&mut i, "Swim", "NME_rating", "2");
        let y = i.var("y");
        let z = i.var("z");
        let q = SparqlQuery {
            pattern: example1(&mut i),
            select: Some(vec![y, z]),
        };
        let answers = q.evaluate(&ts, &mut i).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].domain().len(), 2);
    }

    #[test]
    fn unknown_select_var_errors() {
        let mut i = Interner::new();
        let nope = i.var("nope");
        let q = SparqlQuery {
            pattern: example1(&mut i),
            select: Some(vec![nope]),
        };
        assert!(matches!(
            q.to_wdpt(&mut i),
            Err(SparqlError::UnknownSelectVar(_))
        ));
    }

    #[test]
    fn display_uses_paper_notation() {
        let mut i = Interner::new();
        let pat = example1(&mut i);
        let s = pat.display(&i);
        assert!(s.contains("AND"));
        assert!(s.contains("OPT"));
        assert!(s.starts_with("((("));
    }
}
