//! RDF triple stores: the single-ternary-relation databases of "RDF WDPTs".

use wdpt_model::{Const, Database, Interner, Pred};

/// The reserved predicate name of the ternary triple relation.
pub const TRIPLE_PRED: &str = "triple";

/// An RDF dataset: a thin wrapper over [`Database`] holding the single
/// ternary relation `triple(subject, predicate, object)`. The paper notes
/// that all its results hold already over this restricted schema.
#[derive(Debug, Clone, Default)]
pub struct TripleStore {
    db: Database,
}

impl TripleStore {
    /// An empty store.
    pub fn new() -> Self {
        TripleStore::default()
    }

    /// The interned triple predicate.
    pub fn pred(interner: &mut Interner) -> Pred {
        interner.pred(TRIPLE_PRED)
    }

    /// Inserts a triple of already-interned constants.
    pub fn insert(&mut self, interner: &mut Interner, s: Const, p: Const, o: Const) -> bool {
        let pred = Self::pred(interner);
        self.db.insert(pred, vec![s, p, o])
    }

    /// Inserts a triple given as strings (interning as needed).
    pub fn insert_str(&mut self, interner: &mut Interner, s: &str, p: &str, o: &str) -> bool {
        let (s, p, o) = (
            interner.constant(s),
            interner.constant(p),
            interner.constant(o),
        );
        self.insert(interner, s, p, o)
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.db.size()
    }

    /// True iff the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.db.size() == 0
    }

    /// The underlying relational database (for the WDPT engines).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Consumes the store, returning the database.
    pub fn into_database(self) -> Database {
        self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_count() {
        let mut i = Interner::new();
        let mut ts = TripleStore::new();
        assert!(ts.is_empty());
        assert!(ts.insert_str(&mut i, "Swim", "recorded_by", "Caribou"));
        assert!(!ts.insert_str(&mut i, "Swim", "recorded_by", "Caribou"));
        assert!(ts.insert_str(&mut i, "Swim", "published", "after_2010"));
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn database_exposes_single_ternary_relation() {
        let mut i = Interner::new();
        let mut ts = TripleStore::new();
        ts.insert_str(&mut i, "a", "b", "c");
        let db = ts.database();
        assert_eq!(db.predicate_count(), 1);
        let p = i.pred(TRIPLE_PRED);
        assert_eq!(db.relation(p).unwrap().arity(), 3);
    }
}
