//! Parser for the paper's algebraic {AND, OPT} notation.
//!
//! ```text
//! query   := 'SELECT' var+ 'WHERE' '{' pattern '}'   |   pattern
//! pattern := unit (('AND' | 'OPT') unit)*            // left-associative
//! unit    := triple | '(' pattern ')'
//! triple  := '(' term ',' term ',' term ')'
//! term    := '?' ident | ident | '"' chars '"'
//! ```
//!
//! Example (query (1) of the paper):
//!
//! ```text
//! (((?x, recorded_by, ?y) AND (?x, published, "after_2010"))
//!    OPT (?x, NME_rating, ?z)) OPT (?y, formed_in, ?z2)
//! ```

use crate::algebra::{GraphPattern, SparqlQuery, TriplePattern};
use wdpt_model::{Interner, Term, Var};

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparqlParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for SparqlParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SPARQL parse error at byte {}: {}",
            self.at, self.message
        )
    }
}

impl std::error::Error for SparqlParseError {}

struct P<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn skip_ws(&mut self) {
        let t = self.src[self.pos..].trim_start();
        self.pos = self.src.len() - t.len();
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.src[self.pos..].chars().next()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn err(&self, m: impl Into<String>) -> SparqlParseError {
        SparqlParseError {
            at: self.pos,
            message: m.into(),
        }
    }

    fn expect(&mut self, c: char) -> Result<(), SparqlParseError> {
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}'")))
        }
    }

    fn ident(&mut self) -> Result<&'a str, SparqlParseError> {
        self.skip_ws();
        let start = self.pos;
        let ok = |c: char| c.is_alphanumeric() || "_.'-".contains(c);
        while self.src[self.pos..].chars().next().is_some_and(ok) {
            self.bump();
        }
        if self.pos == start {
            Err(self.err("expected identifier"))
        } else {
            Ok(&self.src[start..self.pos])
        }
    }

    /// Consumes a keyword if present (case-insensitive).
    fn keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        if rest.len() >= kw.len() && rest[..kw.len()].eq_ignore_ascii_case(kw) {
            let after = rest[kw.len()..].chars().next();
            if after.is_none_or(|c| !c.is_alphanumeric() && c != '_') {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn term(&mut self, i: &mut Interner) -> Result<Term, SparqlParseError> {
        match self.peek() {
            Some('?') => {
                self.bump();
                Ok(Term::Var(i.var(self.ident()?)))
            }
            Some('"') => {
                self.bump();
                let start = self.pos;
                while let Some(c) = self.src[self.pos..].chars().next() {
                    if c == '"' {
                        let s = &self.src[start..self.pos];
                        self.bump();
                        return Ok(Term::Const(i.constant(s)));
                    }
                    self.bump();
                }
                Err(self.err("unterminated string literal"))
            }
            Some(_) => Ok(Term::Const(i.constant(self.ident()?))),
            None => Err(self.err("expected term")),
        }
    }

    fn unit(&mut self, i: &mut Interner) -> Result<GraphPattern, SparqlParseError> {
        self.expect('(')?;
        // Try a triple first: term ',' term ',' term ')'.
        let save = self.pos;
        if let Ok(s) = self.term(i) {
            if self.peek() == Some(',') {
                self.bump();
                let p = self.term(i)?;
                self.expect(',')?;
                let o = self.term(i)?;
                self.expect(')')?;
                return Ok(GraphPattern::Triple(TriplePattern { s, p, o }));
            }
        }
        // Not a triple: parenthesized pattern.
        self.pos = save;
        let inner = self.pattern(i)?;
        self.expect(')')?;
        Ok(inner)
    }

    fn pattern(&mut self, i: &mut Interner) -> Result<GraphPattern, SparqlParseError> {
        let mut acc = self.unit(i)?;
        loop {
            if self.keyword("AND") {
                let rhs = self.unit(i)?;
                acc = GraphPattern::And(Box::new(acc), Box::new(rhs));
            } else if self.keyword("OPT") {
                let rhs = self.unit(i)?;
                acc = GraphPattern::Opt(Box::new(acc), Box::new(rhs));
            } else {
                return Ok(acc);
            }
        }
    }

    fn union(&mut self, i: &mut Interner) -> Result<Vec<GraphPattern>, SparqlParseError> {
        let mut branches = vec![self.pattern(i)?];
        while self.keyword("UNION") {
            branches.push(self.pattern(i)?);
        }
        Ok(branches)
    }

    fn query(&mut self, i: &mut Interner) -> Result<SparqlQuery, SparqlParseError> {
        if self.keyword("SELECT") {
            let mut select: Vec<Var> = Vec::new();
            while self.peek() == Some('?') {
                self.bump();
                select.push(i.var(self.ident()?));
            }
            if !self.keyword("WHERE") {
                return Err(self.err("expected WHERE"));
            }
            self.expect('{')?;
            let pattern = self.pattern(i)?;
            self.expect('}')?;
            Ok(SparqlQuery {
                pattern,
                select: Some(select),
            })
        } else {
            Ok(SparqlQuery {
                pattern: self.pattern(i)?,
                select: None,
            })
        }
    }
}

/// Parses a query in the algebraic notation (with optional `SELECT`).
pub fn parse_query(interner: &mut Interner, src: &str) -> Result<SparqlQuery, SparqlParseError> {
    let mut p = P { src, pos: 0 };
    let q = p.query(interner)?;
    p.skip_ws();
    if p.pos != src.len() {
        return Err(p.err("trailing input"));
    }
    Ok(q)
}

/// Parses a union query `P₁ UNION P₂ UNION …` (optionally wrapped in
/// `SELECT … WHERE { … }`) into a [`crate::algebra::UnionQuery`].
pub fn parse_union_query(
    interner: &mut Interner,
    src: &str,
) -> Result<crate::algebra::UnionQuery, SparqlParseError> {
    let mut p = P { src, pos: 0 };
    let q = if p.keyword("SELECT") {
        let mut select: Vec<Var> = Vec::new();
        while p.peek() == Some('?') {
            p.bump();
            select.push(interner.var(p.ident()?));
        }
        if !p.keyword("WHERE") {
            return Err(p.err("expected WHERE"));
        }
        p.expect('{')?;
        let branches = p.union(interner)?;
        p.expect('}')?;
        crate::algebra::UnionQuery {
            branches,
            select: Some(select),
        }
    } else {
        crate::algebra::UnionQuery {
            branches: p.union(interner)?,
            select: None,
        }
    };
    p.skip_ws();
    if p.pos != src.len() {
        return Err(p.err("trailing input"));
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE1: &str = r#"(((?x, recorded_by, ?y) AND (?x, published, "after_2010"))
        OPT (?x, NME_rating, ?z)) OPT (?y, formed_in, ?z2)"#;

    #[test]
    fn parses_example1() {
        let mut i = Interner::new();
        let q = parse_query(&mut i, EXAMPLE1).unwrap();
        assert!(q.select.is_none());
        assert!(q.pattern.is_well_designed());
        let p = q.to_wdpt(&mut i).unwrap();
        assert_eq!(p.node_count(), 3);
    }

    #[test]
    fn parses_select_form() {
        let mut i = Interner::new();
        let src = format!("SELECT ?y ?z WHERE {{ {EXAMPLE1} }}");
        let q = parse_query(&mut i, &src).unwrap();
        assert_eq!(q.select.as_ref().unwrap().len(), 2);
        let p = q.to_wdpt(&mut i).unwrap();
        assert_eq!(p.free_vars().len(), 2);
    }

    #[test]
    fn left_associative_chain() {
        let mut i = Interner::new();
        let q = parse_query(&mut i, "(?a, p, ?b) OPT (?a, q, ?c) OPT (?a, r, ?d)").unwrap();
        // ((t OPT t) OPT t): root with child; outer OPT attaches second
        // child to the root after normal form.
        let p = q.to_wdpt(&mut i).unwrap();
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.children(0).len(), 2);
    }

    #[test]
    fn nested_opt_right_side() {
        let mut i = Interner::new();
        let q = parse_query(&mut i, "(?a, p, ?b) OPT ((?b, q, ?c) OPT (?c, r, ?d))").unwrap();
        let p = q.to_wdpt(&mut i).unwrap();
        // Chain: root → child → grandchild.
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.children(0).len(), 1);
        assert_eq!(p.children(1).len(), 1);
    }

    #[test]
    fn and_chain_is_one_node() {
        let mut i = Interner::new();
        let q = parse_query(&mut i, "(?a, p, ?b) AND (?b, q, ?c) AND (?c, r, ?d)").unwrap();
        let p = q.to_wdpt(&mut i).unwrap();
        assert_eq!(p.node_count(), 1);
        assert_eq!(p.atoms(0).len(), 3);
    }

    #[test]
    fn rejects_garbage() {
        let mut i = Interner::new();
        assert!(parse_query(&mut i, "(?a, p)").is_err());
        assert!(parse_query(&mut i, "(?a, p, ?b) AND").is_err());
        assert!(parse_query(&mut i, "(?a, p, ?b) XYZ (?a, p, ?c)").is_err());
        assert!(parse_query(&mut i, "SELECT ?x FROM { (?x, p, ?y) }").is_err());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let mut i = Interner::new();
        let q = parse_query(&mut i, "(?a, p, ?b) opt (?b, q, ?c)").unwrap();
        assert!(matches!(q.pattern, GraphPattern::Opt(_, _)));
    }
}
