//! Parser for the paper's algebraic {AND, OPT} notation.
//!
//! ```text
//! query   := 'SELECT' var+ 'WHERE' '{' pattern '}'   |   pattern
//! pattern := unit (('AND' | 'OPT') unit)*            // left-associative
//! unit    := triple | '(' pattern ')'
//! triple  := '(' term ',' term ',' term ')'
//! term    := '?' ident | ident | '"' chars '"'
//! ```
//!
//! Example (query (1) of the paper):
//!
//! ```text
//! (((?x, recorded_by, ?y) AND (?x, published, "after_2010"))
//!    OPT (?x, NME_rating, ?z)) OPT (?y, formed_in, ?z2)
//! ```

use crate::algebra::{GraphPattern, SparqlQuery, TriplePattern};
use wdpt_model::{Interner, Term, Var};

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparqlParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for SparqlParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SPARQL parse error at byte {}: {}",
            self.at, self.message
        )
    }
}

impl std::error::Error for SparqlParseError {}

struct P<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn skip_ws(&mut self) {
        let t = self.src[self.pos..].trim_start();
        self.pos = self.src.len() - t.len();
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.src[self.pos..].chars().next()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn err(&self, m: impl Into<String>) -> SparqlParseError {
        SparqlParseError {
            at: self.pos,
            message: m.into(),
        }
    }

    fn expect(&mut self, c: char) -> Result<(), SparqlParseError> {
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}'")))
        }
    }

    fn ident(&mut self) -> Result<&'a str, SparqlParseError> {
        self.skip_ws();
        let start = self.pos;
        let ok = |c: char| c.is_alphanumeric() || "_.'-".contains(c);
        while self.src[self.pos..].chars().next().is_some_and(ok) {
            self.bump();
        }
        if self.pos == start {
            Err(self.err("expected identifier"))
        } else {
            Ok(&self.src[start..self.pos])
        }
    }

    /// Consumes a keyword if present (case-insensitive).
    fn keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        if rest.len() >= kw.len() && rest[..kw.len()].eq_ignore_ascii_case(kw) {
            let after = rest[kw.len()..].chars().next();
            if after.is_none_or(|c| !c.is_alphanumeric() && c != '_') {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn term(&mut self, i: &mut Interner) -> Result<Term, SparqlParseError> {
        match self.peek() {
            Some('?') => {
                self.bump();
                Ok(Term::Var(i.var(self.ident()?)))
            }
            Some('"') => {
                self.bump();
                let start = self.pos;
                while let Some(c) = self.src[self.pos..].chars().next() {
                    if c == '"' {
                        let s = &self.src[start..self.pos];
                        self.bump();
                        return Ok(Term::Const(i.constant(s)));
                    }
                    self.bump();
                }
                Err(self.err("unterminated string literal"))
            }
            Some(_) => Ok(Term::Const(i.constant(self.ident()?))),
            None => Err(self.err("expected term")),
        }
    }

    fn unit(&mut self, i: &mut Interner) -> Result<GraphPattern, SparqlParseError> {
        self.expect('(')?;
        // Try a triple first: term ',' term ',' term ')'.
        let save = self.pos;
        if let Ok(s) = self.term(i) {
            if self.peek() == Some(',') {
                self.bump();
                let p = self.term(i)?;
                self.expect(',')?;
                let o = self.term(i)?;
                self.expect(')')?;
                return Ok(GraphPattern::Triple(TriplePattern { s, p, o }));
            }
        }
        // Not a triple: parenthesized pattern.
        self.pos = save;
        let inner = self.pattern(i)?;
        self.expect(')')?;
        Ok(inner)
    }

    fn pattern(&mut self, i: &mut Interner) -> Result<GraphPattern, SparqlParseError> {
        let mut acc = self.unit(i)?;
        loop {
            if self.keyword("AND") {
                let rhs = self.unit(i)?;
                acc = GraphPattern::And(Box::new(acc), Box::new(rhs));
            } else if self.keyword("OPT") {
                let rhs = self.unit(i)?;
                acc = GraphPattern::Opt(Box::new(acc), Box::new(rhs));
            } else {
                return Ok(acc);
            }
        }
    }

    fn union(&mut self, i: &mut Interner) -> Result<Vec<GraphPattern>, SparqlParseError> {
        let mut branches = vec![self.pattern(i)?];
        while self.keyword("UNION") {
            branches.push(self.pattern(i)?);
        }
        Ok(branches)
    }

    /// Parses the `SELECT` variable list, rejecting duplicates at the byte
    /// offset of the repeated occurrence. Returns each variable with the
    /// offset and spelling of its occurrence so the caller can report
    /// projection errors against the source text.
    fn select_list(
        &mut self,
        i: &mut Interner,
    ) -> Result<Vec<(Var, usize, &'a str)>, SparqlParseError> {
        let mut select: Vec<(Var, usize, &'a str)> = Vec::new();
        while self.peek() == Some('?') {
            let at = self.pos;
            self.bump();
            let name = self.ident()?;
            let v = i.var(name);
            if select.iter().any(|&(u, _, _)| u == v) {
                return Err(SparqlParseError {
                    at,
                    message: format!("duplicate SELECT variable ?{name}"),
                });
            }
            select.push((v, at, name));
        }
        Ok(select)
    }

    fn query(&mut self, i: &mut Interner) -> Result<SparqlQuery, SparqlParseError> {
        if self.keyword("SELECT") {
            let select = self.select_list(i)?;
            if !self.keyword("WHERE") {
                return Err(self.err("expected WHERE"));
            }
            self.expect('{')?;
            let pattern = self.pattern(i)?;
            self.expect('}')?;
            // Projection of a variable the pattern never binds is always a
            // mistake; report it against the SELECT clause, not as a late
            // translation failure.
            let vars = pattern.variables();
            for &(v, at, name) in &select {
                if !vars.contains(&v) {
                    return Err(SparqlParseError {
                        at,
                        message: format!("SELECT variable ?{name} does not occur in the pattern"),
                    });
                }
            }
            Ok(SparqlQuery {
                pattern,
                select: Some(select.into_iter().map(|(v, _, _)| v).collect()),
            })
        } else {
            Ok(SparqlQuery {
                pattern: self.pattern(i)?,
                select: None,
            })
        }
    }
}

/// Parses a query in the algebraic notation (with optional `SELECT`).
pub fn parse_query(interner: &mut Interner, src: &str) -> Result<SparqlQuery, SparqlParseError> {
    let mut p = P { src, pos: 0 };
    let q = p.query(interner)?;
    p.skip_ws();
    if p.pos != src.len() {
        return Err(p.err("trailing input"));
    }
    Ok(q)
}

/// Parses a union query `P₁ UNION P₂ UNION …` (optionally wrapped in
/// `SELECT … WHERE { … }`) into a [`crate::algebra::UnionQuery`].
pub fn parse_union_query(
    interner: &mut Interner,
    src: &str,
) -> Result<crate::algebra::UnionQuery, SparqlParseError> {
    let mut p = P { src, pos: 0 };
    let q = if p.keyword("SELECT") {
        let select = p.select_list(interner)?;
        if !p.keyword("WHERE") {
            return Err(p.err("expected WHERE"));
        }
        p.expect('{')?;
        let branches = p.union(interner)?;
        p.expect('}')?;
        // A branch may omit a projected variable (the paper's UWDPTs do
        // not require shared free variables), but a variable occurring in
        // NO branch can never be bound.
        let mut vars = std::collections::BTreeSet::new();
        for b in &branches {
            vars.extend(b.variables());
        }
        for &(v, at, name) in &select {
            if !vars.contains(&v) {
                return Err(SparqlParseError {
                    at,
                    message: format!("SELECT variable ?{name} occurs in no UNION branch"),
                });
            }
        }
        crate::algebra::UnionQuery {
            branches,
            select: Some(select.into_iter().map(|(v, _, _)| v).collect()),
        }
    } else {
        crate::algebra::UnionQuery {
            branches: p.union(interner)?,
            select: None,
        }
    };
    p.skip_ws();
    if p.pos != src.len() {
        return Err(p.err("trailing input"));
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE1: &str = r#"(((?x, recorded_by, ?y) AND (?x, published, "after_2010"))
        OPT (?x, NME_rating, ?z)) OPT (?y, formed_in, ?z2)"#;

    #[test]
    fn parses_example1() {
        let mut i = Interner::new();
        let q = parse_query(&mut i, EXAMPLE1).unwrap();
        assert!(q.select.is_none());
        assert!(q.pattern.is_well_designed());
        let p = q.to_wdpt(&mut i).unwrap();
        assert_eq!(p.node_count(), 3);
    }

    #[test]
    fn parses_select_form() {
        let mut i = Interner::new();
        let src = format!("SELECT ?y ?z WHERE {{ {EXAMPLE1} }}");
        let q = parse_query(&mut i, &src).unwrap();
        assert_eq!(q.select.as_ref().unwrap().len(), 2);
        let p = q.to_wdpt(&mut i).unwrap();
        assert_eq!(p.free_vars().len(), 2);
    }

    #[test]
    fn left_associative_chain() {
        let mut i = Interner::new();
        let q = parse_query(&mut i, "(?a, p, ?b) OPT (?a, q, ?c) OPT (?a, r, ?d)").unwrap();
        // ((t OPT t) OPT t): root with child; outer OPT attaches second
        // child to the root after normal form.
        let p = q.to_wdpt(&mut i).unwrap();
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.children(0).len(), 2);
    }

    #[test]
    fn nested_opt_right_side() {
        let mut i = Interner::new();
        let q = parse_query(&mut i, "(?a, p, ?b) OPT ((?b, q, ?c) OPT (?c, r, ?d))").unwrap();
        let p = q.to_wdpt(&mut i).unwrap();
        // Chain: root → child → grandchild.
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.children(0).len(), 1);
        assert_eq!(p.children(1).len(), 1);
    }

    #[test]
    fn and_chain_is_one_node() {
        let mut i = Interner::new();
        let q = parse_query(&mut i, "(?a, p, ?b) AND (?b, q, ?c) AND (?c, r, ?d)").unwrap();
        let p = q.to_wdpt(&mut i).unwrap();
        assert_eq!(p.node_count(), 1);
        assert_eq!(p.atoms(0).len(), 3);
    }

    #[test]
    fn rejects_garbage() {
        let mut i = Interner::new();
        assert!(parse_query(&mut i, "(?a, p)").is_err());
        assert!(parse_query(&mut i, "(?a, p, ?b) AND").is_err());
        assert!(parse_query(&mut i, "(?a, p, ?b) XYZ (?a, p, ?c)").is_err());
        assert!(parse_query(&mut i, "SELECT ?x FROM { (?x, p, ?y) }").is_err());
    }

    #[test]
    fn rejects_duplicate_select_variables_with_offset() {
        let mut i = Interner::new();
        let src = "SELECT ?x ?y ?x WHERE { (?x, p, ?y) }";
        let err = parse_query(&mut i, src).unwrap_err();
        assert!(
            err.message.contains("duplicate SELECT variable ?x"),
            "{err}"
        );
        // The offset points at the second ?x, not the first.
        assert_eq!(err.at, src.find("?y").unwrap() + 3);
        assert_eq!(&src[err.at..err.at + 2], "?x");
    }

    #[test]
    fn rejects_select_variable_missing_from_pattern() {
        let mut i = Interner::new();
        let src = "SELECT ?x ?nope WHERE { (?x, p, ?y) }";
        let err = parse_query(&mut i, src).unwrap_err();
        assert!(
            err.message.contains("?nope does not occur in the pattern"),
            "{err}"
        );
        assert_eq!(err.at, src.find("?nope").unwrap());
    }

    #[test]
    fn union_select_hardening() {
        let mut i = Interner::new();
        // Duplicate in a union query.
        assert!(parse_union_query(
            &mut i,
            "SELECT ?a ?a WHERE { (?a, p, ?b) UNION (?a, q, ?c) }"
        )
        .is_err());
        // A variable in only one branch is fine ...
        let ok = parse_union_query(
            &mut i,
            "SELECT ?a ?c WHERE { (?a, p, ?b) UNION (?a, q, ?c) }",
        )
        .unwrap();
        assert_eq!(ok.branches.len(), 2);
        // ... but a variable in no branch is rejected with its offset.
        let src = "SELECT ?z WHERE { (?a, p, ?b) UNION (?a, q, ?c) }";
        let err = parse_union_query(&mut i, src).unwrap_err();
        assert!(
            err.message.contains("?z occurs in no UNION branch"),
            "{err}"
        );
        assert_eq!(err.at, src.find("?z").unwrap());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let mut i = Interner::new();
        let q = parse_query(&mut i, "(?a, p, ?b) opt (?b, q, ?c)").unwrap();
        assert!(matches!(q.pattern, GraphPattern::Opt(_, _)));
    }
}
