//! # wdpt-sparql — the {AND, OPT} front end and RDF triple stores
//!
//! The paper's motivating application (Section 1): WDPTs are the tree
//! representation of *well-designed* {AND, OPT}-SPARQL over RDF. This crate
//! provides that surface:
//!
//! * [`triples`] — RDF triple stores: databases over the single ternary
//!   relation `triple(s, p, o)` ("RDF WDPTs" in the paper).
//! * [`algebra`] — the algebraic pattern language `t | (P AND P) |
//!   (P OPT P)` of [18], the well-designedness condition, and the
//!   translation to/from WDPTs (pattern-tree normal form of [17]).
//! * [`parser`] — a parser for the paper's algebraic notation, e.g. the
//!   Example 1 query
//!   `(((?x, recorded_by, ?y) AND (?x, published, "after_2010")) OPT
//!   (?x, NME_rating, ?z)) OPT (?y, formed_in, ?z2)`,
//!   optionally wrapped in `SELECT ?y ?z WHERE { … }` for projection.

pub mod algebra;
pub mod nt;
pub mod parser;
pub mod triples;

pub use algebra::{GraphPattern, SparqlQuery, TriplePattern, UnionQuery};
pub use nt::{parse_nt, parse_nt_line};
pub use parser::{parse_query, parse_union_query};
pub use triples::{TripleStore, TRIPLE_PRED};
