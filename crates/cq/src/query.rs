//! The conjunctive-query type and its hypergraph.

use std::collections::{BTreeMap, BTreeSet};
use wdpt_decomp::Hypergraph;
use wdpt_model::{Atom, Interner, Mapping, Var};

/// A conjunctive query `Ans(x̄) ← R₁(v̄₁), …, R_m(v̄_m)` (rule form (2) of
/// the paper). `head` lists the free variables `x̄` (distinct, all occurring
/// in the body); every other body variable is existentially quantified.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConjunctiveQuery {
    head: Vec<Var>,
    body: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Creates a CQ.
    ///
    /// # Panics
    /// Panics if head variables repeat or do not occur in the body — both
    /// are malformed queries under the paper's definition.
    pub fn new(head: Vec<Var>, body: Vec<Atom>) -> Self {
        let body_vars: BTreeSet<Var> = body.iter().flat_map(|a| a.vars()).collect();
        let mut seen = BTreeSet::new();
        for &v in &head {
            assert!(seen.insert(v), "repeated head variable");
            assert!(
                body_vars.contains(&v),
                "head variable does not occur in the body"
            );
        }
        ConjunctiveQuery { head, body }
    }

    /// A Boolean CQ `Ans() ← body`.
    pub fn boolean(body: Vec<Atom>) -> Self {
        ConjunctiveQuery::new(Vec::new(), body)
    }

    /// The free variables `x̄`.
    pub fn head(&self) -> &[Var] {
        &self.head
    }

    /// The body atoms.
    pub fn body(&self) -> &[Atom] {
        &self.body
    }

    /// All variables occurring in the body.
    pub fn variables(&self) -> BTreeSet<Var> {
        self.body.iter().flat_map(|a| a.vars()).collect()
    }

    /// The existentially quantified variables (body minus head).
    pub fn existential_variables(&self) -> BTreeSet<Var> {
        let head: BTreeSet<Var> = self.head.iter().copied().collect();
        self.variables().difference(&head).copied().collect()
    }

    /// The head as a set.
    pub fn head_set(&self) -> BTreeSet<Var> {
        self.head.iter().copied().collect()
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// True iff the body is empty.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// The query's hypergraph `H_q` (Section 3.1): one vertex per variable,
    /// one hyperedge per atom carrying the atom's variable set. Returns the
    /// hypergraph together with the vertex → variable table.
    pub fn hypergraph(&self) -> (Hypergraph, Vec<Var>) {
        let vars: Vec<Var> = self.variables().into_iter().collect();
        let index: BTreeMap<Var, usize> = vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let edges: Vec<Vec<usize>> = self
            .body
            .iter()
            .map(|a| a.vars().map(|v| index[&v]).collect())
            .collect();
        (Hypergraph::new(vars.len(), edges), vars)
    }

    /// Applies a partial mapping to the body (substituting constants for the
    /// mapped variables) and drops the mapped variables from the head.
    pub fn apply(&self, h: &Mapping) -> ConjunctiveQuery {
        ConjunctiveQuery {
            head: self
                .head
                .iter()
                .copied()
                .filter(|&v| !h.defines(v))
                .collect(),
            body: self.body.iter().map(|a| a.apply(h)).collect(),
        }
    }

    /// Renders the query in the paper's rule notation.
    pub fn display(&self, interner: &Interner) -> String {
        let head = self
            .head
            .iter()
            .map(|v| format!("?{}", interner.var_name(*v)))
            .collect::<Vec<_>>()
            .join(", ");
        let body = self
            .body
            .iter()
            .map(|a| a.display(interner))
            .collect::<Vec<_>>()
            .join(", ");
        format!("Ans({head}) <- {body}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdpt_model::parse::parse_atoms;

    fn q(interner: &mut Interner, head: &[&str], body: &str) -> ConjunctiveQuery {
        let atoms = parse_atoms(interner, body).unwrap();
        let head = head.iter().map(|n| interner.var(n)).collect();
        ConjunctiveQuery::new(head, atoms)
    }

    #[test]
    fn variables_and_existentials() {
        let mut i = Interner::new();
        let query = q(&mut i, &["x"], "e(?x,?y), e(?y,?z)");
        assert_eq!(query.variables().len(), 3);
        assert_eq!(query.existential_variables().len(), 2);
        assert_eq!(query.head().len(), 1);
    }

    #[test]
    #[should_panic(expected = "does not occur")]
    fn head_var_must_occur() {
        let mut i = Interner::new();
        q(&mut i, &["w"], "e(?x,?y)");
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn head_vars_must_be_distinct() {
        let mut i = Interner::new();
        q(&mut i, &["x", "x"], "e(?x,?y)");
    }

    #[test]
    fn hypergraph_shape() {
        let mut i = Interner::new();
        let query = q(&mut i, &[], "r(?x,?y,?z), r(?x,?v,?v), e(?v,?z)");
        let (h, vars) = query.hypergraph();
        // The paper's example after Example 4: hyperedges {x,y,z}, {x,v}, {v,z}.
        assert_eq!(vars.len(), 4);
        assert_eq!(h.num_edges(), 3);
        let sizes: Vec<usize> = h.edges().iter().map(Vec::len).collect();
        assert!(sizes.contains(&3));
        assert_eq!(sizes.iter().filter(|&&s| s == 2).count(), 2);
    }

    #[test]
    fn apply_substitutes_and_projects_head() {
        let mut i = Interner::new();
        let query = q(&mut i, &["x", "y"], "e(?x,?y)");
        let x = i.var("x");
        let a = i.constant("a");
        let s = query.apply(&Mapping::from_pairs(vec![(x, a)]));
        assert_eq!(s.head().len(), 1);
        assert!(s.body()[0].args[0].as_const().is_some());
    }

    #[test]
    fn display_rule_notation() {
        let mut i = Interner::new();
        let query = q(&mut i, &["x"], "e(?x,?y)");
        assert_eq!(query.display(&i), "Ans(?x) <- e(?x, ?y)");
    }
}
