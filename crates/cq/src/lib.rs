//! # wdpt-cq — conjunctive queries and their evaluation engines
//!
//! WDPT semantics (Definition 2 of the paper) is defined through the CQs
//! `q_{T'}` induced by subtrees, so everything in the paper reduces to CQ
//! machinery. This crate implements it from scratch:
//!
//! * [`query`] — the CQ type `Ans(x̄) ← R₁(v̄₁), …, R_m(v̄_m)` with its
//!   hypergraph, substitution, and canonical (frozen) database.
//! * [`backtrack`] — the generic backtracking join: the baseline evaluation
//!   algorithm that exists for *all* CQs (NP-complete in general,
//!   Chandra–Merlin).
//! * [`structured`] — decomposition-guided evaluation: bag materialization
//!   plus Yannakakis semijoin passes over a tree decomposition (`TW(k)`,
//!   Theorem 2) or a generalized hypertree decomposition (`HW(k)`,
//!   Theorem 3). Polynomial for fixed width.
//! * [`widths`] — the classes `TW(k)`, `HW(k)`, `HW'(k)` as predicates on
//!   CQs (Section 3.1 and Section 5).
//! * [`containment`] — Chandra–Merlin containment and equivalence via
//!   canonical databases.
//! * [`core_of`] — cores of CQs (needed for semantic `TW(k)`-membership,
//!   Section 6).
//! * [`quotient`] — quotient queries (homomorphic self-images), the
//!   candidate space of `TW(k)`-approximations (Barceló–Libkin–Romero).

pub mod backtrack;
pub mod containment;
pub mod core_of;
pub mod counting;
pub mod query;
pub mod quotient;
pub mod structured;
pub mod widths;

pub use backtrack::{
    evaluate, extend_all, extend_exists, try_extend_all, try_extend_all_ordered, try_extend_exists,
    try_extend_exists_ordered, BacktrackConfig,
};
pub use containment::{contained_in, equivalent, freeze};
pub use core_of::{core_of, try_core_of};
pub use counting::count_homomorphisms;
pub use query::ConjunctiveQuery;
pub use structured::{boolean_eval_structured, enumerate_projections, StructuredPlan};
pub use wdpt_decomp::EXACT_TW_VERTEX_LIMIT;
pub use widths::{
    hypertreewidth_at_most_cq, in_hw, in_hw_prime, in_tw, treewidth_of, try_in_hw, try_treewidth_of,
};
