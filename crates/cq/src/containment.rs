//! Chandra–Merlin containment via canonical databases.
//!
//! `q₁ ⊆ q₂` (every answer of `q₁` is an answer of `q₂` over every database)
//! holds iff there is a homomorphism from `q₂` into the *canonical database*
//! of `q₁` — the frozen body of `q₁` — mapping head to head. Because the
//! paper treats answers as *mappings* (footnote 4), two CQs are comparable
//! by `⊆` only when their head variable sets coincide; the subsumption
//! variant [`subsumed_cq`] instead requires `head(q₁) ⊆ head(q₂)` and
//! matching values on the smaller head — this is the CQ-level `⊑` used for
//! unions of WDPTs (Section 6).

use crate::backtrack::extend_exists;
use crate::query::ConjunctiveQuery;
use std::collections::BTreeMap;
use wdpt_model::{Const, Database, Interner, Mapping, Var};

/// Freezes a CQ into its canonical database: each variable becomes a fresh
/// constant. Returns the database and the variable → constant table.
pub fn freeze(q: &ConjunctiveQuery, interner: &mut Interner) -> (Database, BTreeMap<Var, Const>) {
    let mut table: BTreeMap<Var, Const> = BTreeMap::new();
    for v in q.variables() {
        let name = interner.var_name(v).to_owned();
        let c = interner.fresh_const(&name);
        table.insert(v, c);
    }
    let m = Mapping::from_pairs(table.iter().map(|(&v, &c)| (v, c)));
    let mut db = Database::new();
    for a in q.body() {
        db.insert_atom(&a.apply(&m));
    }
    (db, table)
}

/// Classical containment `q1 ⊆ q2`. Requires equal head variable *sets*
/// (answers are mappings); returns `false` otherwise.
pub fn contained_in(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery, interner: &mut Interner) -> bool {
    if q1.head_set() != q2.head_set() {
        return false;
    }
    let (db, table) = freeze(q1, interner);
    let seed = Mapping::from_pairs(q2.head().iter().map(|&x| (x, table[&x])));
    extend_exists(&db, q2.body(), &seed)
}

/// Classical equivalence `q1 ≡ q2`.
pub fn equivalent(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery, interner: &mut Interner) -> bool {
    contained_in(q1, q2, interner) && contained_in(q2, q1, interner)
}

/// CQ-level subsumption `q1 ⊑ q2`: over every database, every answer of `q1`
/// is *extended by* some answer of `q2`. Requires `head(q1) ⊆ head(q2)`;
/// witnessed by a homomorphism from `q2` into the canonical database of `q1`
/// fixing the shared head.
pub fn subsumed_cq(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery, interner: &mut Interner) -> bool {
    let h1 = q1.head_set();
    let h2 = q2.head_set();
    if !h1.is_subset(&h2) {
        return false;
    }
    let (db, table) = freeze(q1, interner);
    let seed = Mapping::from_pairs(h1.iter().map(|&x| (x, table[&x])));
    extend_exists(&db, q2.body(), &seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdpt_model::parse::parse_atoms;

    fn q(i: &mut Interner, head: &[&str], body: &str) -> ConjunctiveQuery {
        let atoms = parse_atoms(i, body).unwrap();
        let head = head.iter().map(|n| i.var(n)).collect();
        ConjunctiveQuery::new(head, atoms)
    }

    #[test]
    fn longer_path_contained_in_shorter() {
        let mut i = Interner::new();
        let p3 = q(&mut i, &[], "e(?a,?b) e(?b,?c) e(?c,?d)");
        let p1 = q(&mut i, &[], "e(?x,?y)");
        assert!(contained_in(&p3, &p1, &mut i));
        assert!(!contained_in(&p1, &p3, &mut i));
    }

    #[test]
    fn cycle_contained_in_path_not_vice_versa() {
        let mut i = Interner::new();
        let cyc = q(&mut i, &[], "e(?x,?y) e(?y,?x)");
        let path = q(&mut i, &[], "e(?a,?b) e(?b,?c)");
        assert!(contained_in(&cyc, &path, &mut i));
        assert!(!contained_in(&path, &cyc, &mut i));
    }

    #[test]
    fn head_variables_matter() {
        let mut i = Interner::new();
        let qa = q(&mut i, &["x"], "e(?x,?y)");
        let qb = q(&mut i, &["y"], "e(?x,?y)");
        assert!(!contained_in(&qa, &qb, &mut i));
    }

    #[test]
    fn identical_queries_are_equivalent() {
        let mut i = Interner::new();
        let qa = q(&mut i, &["x"], "e(?x,?y) e(?y,?z)");
        let qb = q(&mut i, &["x"], "e(?x,?y) e(?y,?z)");
        assert!(equivalent(&qa, &qb, &mut i));
    }

    #[test]
    fn redundant_atom_preserves_equivalence() {
        let mut i = Interner::new();
        let qa = q(&mut i, &["x"], "e(?x,?y)");
        let qb = q(&mut i, &["x"], "e(?x,?y) e(?x,?y2)");
        assert!(equivalent(&qa, &qb, &mut i));
    }

    #[test]
    fn constants_restrict_containment() {
        let mut i = Interner::new();
        let qa = q(&mut i, &["x"], "e(?x, a)");
        let qb = q(&mut i, &["x"], "e(?x, ?y)");
        assert!(contained_in(&qa, &qb, &mut i));
        assert!(!contained_in(&qb, &qa, &mut i));
    }

    #[test]
    fn subsumption_allows_larger_head() {
        let mut i = Interner::new();
        // q1 returns x; q2 returns x and y. Over any database, an answer
        // {x ↦ a} of q1 is extended by an answer of q2.
        let q1 = q(&mut i, &["x"], "e(?x,?y)");
        let q2 = q(&mut i, &["x", "y"], "e(?x,?y)");
        assert!(subsumed_cq(&q1, &q2, &mut i));
        assert!(!subsumed_cq(&q2, &q1, &mut i));
    }

    #[test]
    fn subsumption_checks_shared_head_values() {
        let mut i = Interner::new();
        let q1 = q(&mut i, &["x"], "a(?x)");
        let q2 = q(&mut i, &["x"], "b(?x)");
        assert!(!subsumed_cq(&q1, &q2, &mut i));
    }

    #[test]
    fn frozen_database_has_one_atom_per_body_atom() {
        let mut i = Interner::new();
        let query = q(&mut i, &[], "e(?x,?y) e(?y,?z)");
        let (db, table) = freeze(&query, &mut i);
        assert_eq!(db.size(), 2);
        assert_eq!(table.len(), 3);
    }
}
