//! Decomposition-guided CQ evaluation (Theorems 2 and 3 of the paper).
//!
//! A [`StructuredPlan`] is a join tree whose nodes are variable bags taken
//! from a tree decomposition (`TW(k)` mode) or a generalized hypertree
//! decomposition (`HW(k)` mode, bags carrying an edge cover). Evaluation
//! materializes one relation per bag — at cost `|adom|^{k+1}` (TW) or
//! `|D|^k` (HW) — and then runs the Yannakakis upward semijoin pass, giving
//! a polynomial-time Boolean evaluation procedure for fixed `k`.
//!
//! [`enumerate_projections`] lifts the Boolean procedure to the enumeration
//! of answer projections onto a bounded variable set: it enumerates the
//! candidate-value product of the target variables and Boolean-checks each,
//! which stays polynomial when the target set has bounded size. This is the
//! building block for the bounded-interface evaluation algorithm of
//! Theorem 6 (`wdpt-core`).

use crate::query::ConjunctiveQuery;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use wdpt_decomp::{
    hypertree_width_at_most, treewidth_at_most, HypertreeDecomposition, TreeDecomposition,
};
use wdpt_model::{Atom, Const, Database, Mapping, Term, Var};
use wdpt_obs::{counter, histogram, span};

/// Fully materialized plan state: `(bags, bag relations, parent per node
/// — `usize::MAX` for roots — and a root-first order)`. Produced by
/// `StructuredPlan::materialize_all` for the counting DP.
pub(crate) type MaterializedPlan = (
    Vec<BTreeSet<Var>>,
    Vec<Vec<Mapping>>,
    Vec<usize>,
    Vec<usize>,
);

/// A join-tree evaluation plan over variable bags.
#[derive(Debug, Clone)]
pub struct StructuredPlan {
    bags: Vec<BTreeSet<Var>>,
    tree_edges: Vec<(usize, usize)>,
    /// `HW` mode: covering atom indices per bag; `None` selects `TW`-style
    /// candidate-set materialization.
    covers: Option<Vec<Vec<usize>>>,
}

impl StructuredPlan {
    /// Builds a plan from a tree decomposition of the query's hypergraph.
    /// `vertex_vars` is the vertex → variable table from
    /// [`ConjunctiveQuery::hypergraph`].
    pub fn from_tree_decomposition(td: &TreeDecomposition, vertex_vars: &[Var]) -> Self {
        StructuredPlan {
            bags: td
                .bags
                .iter()
                .map(|b| b.iter().map(|&v| vertex_vars[v]).collect())
                .collect(),
            tree_edges: td.tree_edges.clone(),
            covers: None,
        }
    }

    /// Builds a plan from a generalized hypertree decomposition (edge `i` of
    /// the hypergraph is body atom `i`).
    pub fn from_hypertree_decomposition(htd: &HypertreeDecomposition, vertex_vars: &[Var]) -> Self {
        StructuredPlan {
            bags: htd
                .nodes
                .iter()
                .map(|(b, _)| b.iter().map(|&v| vertex_vars[v]).collect())
                .collect(),
            tree_edges: htd.tree_edges.clone(),
            covers: Some(htd.nodes.iter().map(|(_, c)| c.clone()).collect()),
        }
    }

    /// Convenience: a `TW` plan for `q` if `q ∈ TW(k)`.
    pub fn for_query_tw(q: &ConjunctiveQuery, k: usize) -> Option<Self> {
        let (h, vars) = q.hypergraph();
        let td = treewidth_at_most(&h, k)?;
        Some(Self::from_tree_decomposition(&td, &vars))
    }

    /// Convenience: an `HW` plan for `q` if `q ∈ HW(k)`.
    pub fn for_query_hw(q: &ConjunctiveQuery, k: usize) -> Option<Self> {
        let (h, vars) = q.hypergraph();
        let htd = hypertree_width_at_most(&h, k)?;
        Some(Self::from_hypertree_decomposition(&htd, &vars))
    }

    /// The bag width (`max |bag|`), for diagnostics.
    pub fn max_bag_size(&self) -> usize {
        self.bags.iter().map(BTreeSet::len).max().unwrap_or(0)
    }

    /// Materializes every bag relation (no seed, no semijoin filtering) and
    /// roots the decomposition forest. Returns
    /// `(bags, relations, parent, root-first order)`; `parent[t]` is
    /// `usize::MAX` for roots. `None` if the plan does not cover some atom
    /// (mismatched plan/query). Used by [`crate::counting`].
    pub(crate) fn materialize_all(
        &self,
        q: &ConjunctiveQuery,
        db: &Database,
    ) -> Option<MaterializedPlan> {
        let atoms = q.body().to_vec();
        let bags = self.bags.clone();
        let mut contained: Vec<Vec<usize>> = vec![Vec::new(); bags.len()];
        for (i, a) in atoms.iter().enumerate() {
            let avars = a.var_set();
            let b = (0..bags.len()).find(|&b| avars.is_subset(&bags[b]))?;
            contained[b].push(i);
        }
        let mut relations: Vec<Vec<Mapping>> = Vec::with_capacity(bags.len());
        for (b, bag) in bags.iter().enumerate() {
            let cover = self.covers.as_ref().map(|c| c[b].as_slice());
            let tuples = materialize_bag(db, &atoms, bag, &contained[b], cover);
            if wdpt_obs::tracing_enabled() {
                histogram!("cq.structured.bag_size").record(tuples.len() as u64);
            }
            relations.push(tuples);
        }
        let n = bags.len();
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &self.tree_edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut parent = vec![usize::MAX; n];
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        for root in 0..n {
            if seen[root] {
                continue;
            }
            seen[root] = true;
            let mut stack = vec![root];
            while let Some(v) = stack.pop() {
                order.push(v);
                for &w in &adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        parent[w] = v;
                        stack.push(w);
                    }
                }
            }
        }
        Some((bags, relations, parent, order))
    }
}

/// Candidate values of `v`: the intersection, over atoms containing `v`, of
/// the values `v` can take in tuples matching the atom's constant pattern.
/// A superset of the values any homomorphism assigns to `v`.
fn candidate_values(db: &Database, atoms: &[Atom], v: Var) -> BTreeSet<Const> {
    let mut cand: Option<BTreeSet<Const>> = None;
    for atom in atoms {
        if !atom.vars().any(|w| w == v) {
            continue;
        }
        let pat: Vec<Option<Const>> = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Const(c) => Some(*c),
                Term::Var(_) => None,
            })
            .collect();
        let positions: Vec<usize> = atom
            .args
            .iter()
            .enumerate()
            .filter_map(|(i, t)| (t.as_var() == Some(v)).then_some(i))
            .collect();
        let mut values = BTreeSet::new();
        if let Some(rel) = db.relation(atom.pred) {
            'tuples: for t in rel.matching(&pat) {
                // Repeated occurrences of v must agree within the tuple.
                let first = t[positions[0]];
                for &p in &positions[1..] {
                    if t[p] != first {
                        continue 'tuples;
                    }
                }
                values.insert(first);
            }
        }
        cand = Some(match cand {
            None => values,
            Some(prev) => prev.intersection(&values).copied().collect(),
        });
    }
    cand.unwrap_or_default()
}

/// Materializes the relation of one bag: all assignments of the bag's
/// variables that satisfy every atom fully contained in the bag.
fn materialize_bag(
    db: &Database,
    atoms: &[Atom],
    bag: &BTreeSet<Var>,
    contained_atoms: &[usize],
    cover: Option<&[usize]>,
) -> Vec<Mapping> {
    let _span = span!("cq.structured.materialize");
    match cover {
        Some(cover_atoms) => {
            // HW mode: join the ≤ k cover atoms, project to the bag, filter
            // by the contained atoms.
            let cover_set: Vec<Atom> = cover_atoms.iter().map(|&i| atoms[i].clone()).collect();
            let homs = crate::backtrack::extend_all(db, &cover_set, &Mapping::empty());
            let mut seen: BTreeSet<Mapping> = BTreeSet::new();
            for h in homs {
                let proj = h.restrict(bag);
                if seen.contains(&proj) {
                    continue;
                }
                let ok = contained_atoms
                    .iter()
                    .all(|&i| db.contains_atom(&atoms[i].apply(&proj)));
                if ok {
                    seen.insert(proj);
                }
            }
            seen.into_iter().collect()
        }
        None => {
            // TW mode: backtrack over the bag variables through their
            // candidate sets, pruning with contained atoms as soon as they
            // become fully bound.
            let bag_vars: Vec<Var> = bag.iter().copied().collect();
            let cands: Vec<Vec<Const>> = bag_vars
                .iter()
                .map(|&v| candidate_values(db, atoms, v).into_iter().collect())
                .collect();
            // For pruning: atom i can be checked after the last of its vars
            // (w.r.t. bag_vars order) is bound.
            let check_after: Vec<Vec<usize>> = {
                let mut table = vec![Vec::new(); bag_vars.len()];
                for &ai in contained_atoms {
                    let avars = atoms[ai].var_set();
                    if let Some(last) = bag_vars
                        .iter()
                        .enumerate()
                        .filter(|(_, v)| avars.contains(v))
                        .map(|(i, _)| i)
                        .max()
                    {
                        table[last].push(ai);
                    } else {
                        // Variable-free (ground) atom: check once up front.
                        if !db.contains_atom(&atoms[ai]) {
                            return Vec::new();
                        }
                    }
                }
                table
            };
            let mut out = Vec::new();
            let mut h = Mapping::empty();
            #[allow(clippy::too_many_arguments)]
            fn rec(
                db: &Database,
                atoms: &[Atom],
                bag_vars: &[Var],
                cands: &[Vec<Const>],
                check_after: &[Vec<usize>],
                depth: usize,
                h: &mut Mapping,
                out: &mut Vec<Mapping>,
            ) {
                if depth == bag_vars.len() {
                    out.push(h.clone());
                    return;
                }
                for &c in &cands[depth] {
                    h.insert(bag_vars[depth], c);
                    let ok = check_after[depth]
                        .iter()
                        .all(|&ai| db.contains_atom(&atoms[ai].apply(h)));
                    if ok {
                        rec(db, atoms, bag_vars, cands, check_after, depth + 1, h, out);
                    }
                    h.remove(bag_vars[depth]);
                }
            }
            rec(
                db,
                atoms,
                &bag_vars,
                &cands,
                &check_after,
                0,
                &mut h,
                &mut out,
            );
            out
        }
    }
}

/// Boolean structured evaluation: does a homomorphism from `q` to `db`
/// extending `seed` exist? Runs bag materialization plus the Yannakakis
/// upward semijoin pass over `plan`. Polynomial for fixed bag width / cover
/// size.
pub fn boolean_eval_structured(
    q: &ConjunctiveQuery,
    db: &Database,
    plan: &StructuredPlan,
    seed: &Mapping,
) -> bool {
    let _span = span!("cq.structured.eval");
    // Substitute the seed so bound variables become constants.
    let atoms: Vec<Atom> = q.body().iter().map(|a| a.apply(seed)).collect();
    let bags: Vec<BTreeSet<Var>> = plan
        .bags
        .iter()
        .map(|b| b.iter().copied().filter(|&v| !seed.defines(v)).collect())
        .collect();
    if atoms.is_empty() {
        return true;
    }
    // Assign each atom to one bag that contains all its variables.
    let mut contained: Vec<Vec<usize>> = vec![Vec::new(); bags.len()];
    for (i, a) in atoms.iter().enumerate() {
        let avars = a.var_set();
        match (0..bags.len()).find(|&b| avars.is_subset(&bags[b])) {
            Some(b) => contained[b].push(i),
            // A valid decomposition covers every atom; a seed never breaks
            // coverage (it only removes variables).
            None => unreachable!("decomposition does not cover an atom"),
        }
    }
    // Materialize bags.
    let mut relations: Vec<Vec<Mapping>> = Vec::with_capacity(bags.len());
    for (b, bag) in bags.iter().enumerate() {
        let cover = plan.covers.as_ref().map(|c| c[b].as_slice());
        let tuples = materialize_bag(db, &atoms, bag, &contained[b], cover);
        if wdpt_obs::tracing_enabled() {
            histogram!("cq.structured.bag_size").record(tuples.len() as u64);
        }
        // An empty bag relation means failure unless the bag is trivial
        // (no variables and no atoms to satisfy).
        if tuples.is_empty() && (!bag.is_empty() || !contained[b].is_empty()) {
            return false;
        }
        relations.push(tuples);
    }
    // Root the tree at node 0 and compute a bottom-up order.
    let n = bags.len();
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in &plan.tree_edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut parent = vec![usize::MAX; n];
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for root in 0..n {
        if seen[root] {
            continue;
        }
        seen[root] = true;
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            order.push(v);
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    parent[w] = v;
                    stack.push(w);
                }
            }
        }
    }
    // Upward semijoins: children filter parents.
    let _semijoin_span = span!("cq.structured.semijoin");
    for &t in order.iter().rev() {
        let p = parent[t];
        if p == usize::MAX {
            if relations[t].is_empty() && (!bags[t].is_empty() || !contained[t].is_empty()) {
                return false;
            }
            continue;
        }
        let shared: BTreeSet<Var> = bags[t].intersection(&bags[p]).copied().collect();
        let child_keys: HashSet<Mapping> =
            relations[t].iter().map(|m| m.restrict(&shared)).collect();
        if child_keys.is_empty() {
            return false;
        }
        let before = relations[p].len() as u64;
        relations[p].retain(|m| child_keys.contains(&m.restrict(&shared)));
        let kept = relations[p].len() as u64;
        counter!("cq.structured.semijoin_kept").add(kept);
        counter!("cq.structured.semijoin_dropped").add(before - kept);
        if relations[p].is_empty() {
            return false;
        }
    }
    true
}

/// Enumerates the projections onto `targets` of homomorphisms from `q` to
/// `db` extending `seed`: for each combination of candidate values of the
/// target variables, one Boolean structured check. Polynomial when
/// `|targets|` is bounded — the enumeration pattern behind Theorem 6.
pub fn enumerate_projections(
    q: &ConjunctiveQuery,
    db: &Database,
    plan: &StructuredPlan,
    targets: &BTreeSet<Var>,
    seed: &Mapping,
) -> Vec<Mapping> {
    let _span = span!("cq.structured.enumerate");
    let atoms: Vec<Atom> = q.body().iter().map(|a| a.apply(seed)).collect();
    let target_list: Vec<Var> = targets
        .iter()
        .copied()
        .filter(|&v| !seed.defines(v))
        .collect();
    let cands: Vec<Vec<Const>> = target_list
        .iter()
        .map(|&v| candidate_values(db, &atoms, v).into_iter().collect())
        .collect();
    let mut out = Vec::new();
    let mut assignment = Mapping::empty();
    #[allow(clippy::too_many_arguments)]
    fn rec(
        q: &ConjunctiveQuery,
        db: &Database,
        plan: &StructuredPlan,
        seed: &Mapping,
        targets: &[Var],
        cands: &[Vec<Const>],
        depth: usize,
        assignment: &mut Mapping,
        out: &mut Vec<Mapping>,
    ) {
        if depth == targets.len() {
            let full = seed.union(assignment).expect("disjoint domains");
            if boolean_eval_structured(q, db, plan, &full) {
                out.push(assignment.clone());
            }
            return;
        }
        for &c in &cands[depth] {
            assignment.insert(targets[depth], c);
            rec(
                q,
                db,
                plan,
                seed,
                targets,
                cands,
                depth + 1,
                assignment,
                out,
            );
            assignment.remove(targets[depth]);
        }
    }
    rec(
        q,
        db,
        plan,
        seed,
        &target_list,
        &cands,
        0,
        &mut assignment,
        &mut out,
    );
    out
}

/// Builds a `BTreeMap` index keyed by variable for quick diagnostics in
/// tests (candidate set sizes per variable).
pub fn candidate_profile(db: &Database, q: &ConjunctiveQuery) -> BTreeMap<Var, usize> {
    q.variables()
        .into_iter()
        .map(|v| (v, candidate_values(db, q.body(), v).len()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtrack;
    use wdpt_model::parse::{parse_atoms, parse_database, parse_mapping};
    use wdpt_model::Interner;

    fn path_db(n: usize) -> (Interner, Database) {
        let mut i = Interner::new();
        let mut db = Database::new();
        let e = i.pred("e");
        for j in 0..n {
            let a = i.constant(&format!("n{j}"));
            let b = i.constant(&format!("n{}", j + 1));
            db.insert(e, vec![a, b]);
        }
        (i, db)
    }

    fn q(i: &mut Interner, head: &[&str], body: &str) -> ConjunctiveQuery {
        let atoms = parse_atoms(i, body).unwrap();
        let head = head.iter().map(|n| i.var(n)).collect();
        ConjunctiveQuery::new(head, atoms)
    }

    #[test]
    fn tw_plan_matches_backtracking_boolean() {
        let (mut i, db) = path_db(6);
        let query = q(&mut i, &[], "e(?a,?b) e(?b,?c) e(?c,?d)");
        let plan = StructuredPlan::for_query_tw(&query, 1).expect("path is TW(1)");
        assert_eq!(
            boolean_eval_structured(&query, &db, &plan, &Mapping::empty()),
            backtrack::extend_exists(&db, query.body(), &Mapping::empty())
        );
    }

    #[test]
    fn tw_plan_detects_unsatisfiable() {
        let (mut i, db) = path_db(3);
        // A cycle query on a path database: unsatisfiable.
        let query = q(&mut i, &[], "e(?a,?b) e(?b,?a)");
        let plan = StructuredPlan::for_query_tw(&query, 2).unwrap();
        assert!(!boolean_eval_structured(
            &query,
            &db,
            &plan,
            &Mapping::empty()
        ));
    }

    #[test]
    fn hw_plan_on_triangle_query() {
        let mut i = Interner::new();
        let db = parse_database(&mut i, "e(1,2) e(2,3) e(3,1)").unwrap();
        let query = q(&mut i, &[], "e(?x,?y) e(?y,?z) e(?z,?x)");
        let plan = StructuredPlan::for_query_hw(&query, 2).expect("triangle is HW(2)");
        assert!(boolean_eval_structured(
            &query,
            &db,
            &plan,
            &Mapping::empty()
        ));
        // Remove an edge: no triangle.
        let db2 = parse_database(&mut i, "e(1,2) e(2,3)").unwrap();
        assert!(!boolean_eval_structured(
            &query,
            &db2,
            &plan,
            &Mapping::empty()
        ));
    }

    #[test]
    fn seeded_boolean_eval() {
        let (mut i, db) = path_db(4);
        let query = q(&mut i, &["a"], "e(?a,?b) e(?b,?c)");
        let plan = StructuredPlan::for_query_tw(&query, 1).unwrap();
        let good = parse_mapping(&mut i, "?a -> n0").unwrap();
        let bad = parse_mapping(&mut i, "?a -> n3").unwrap();
        assert!(boolean_eval_structured(&query, &db, &plan, &good));
        assert!(!boolean_eval_structured(&query, &db, &plan, &bad));
    }

    #[test]
    fn projections_match_backtracking() {
        let (mut i, db) = path_db(5);
        let query = q(&mut i, &["a"], "e(?a,?b) e(?b,?c)");
        let plan = StructuredPlan::for_query_tw(&query, 1).unwrap();
        let a = i.var("a");
        let targets: BTreeSet<Var> = [a].into_iter().collect();
        let mut structured = enumerate_projections(&query, &db, &plan, &targets, &Mapping::empty());
        structured.sort();
        let mut reference: Vec<Mapping> = backtrack::evaluate(&query, &db);
        reference.sort();
        assert_eq!(structured, reference);
    }

    #[test]
    fn projection_respects_seed() {
        let (mut i, db) = path_db(5);
        let query = q(&mut i, &["a", "b"], "e(?a,?b) e(?b,?c)");
        let plan = StructuredPlan::for_query_tw(&query, 1).unwrap();
        let b = i.var("b");
        let targets: BTreeSet<Var> = [b].into_iter().collect();
        let seed = parse_mapping(&mut i, "?a -> n1").unwrap();
        let proj = enumerate_projections(&query, &db, &plan, &targets, &seed);
        assert_eq!(proj.len(), 1);
        assert_eq!(proj[0].get(b), Some(i.constant("n2")));
    }

    #[test]
    fn randomized_agreement_with_backtracking() {
        // Deterministic pseudo-random small instances: structured and
        // backtracking engines must agree on satisfiability.
        let mut state = 0x9e3779b9u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for case in 0..30 {
            let mut i = Interner::new();
            let e = i.pred("e");
            let mut db = Database::new();
            let dom = 3 + next() % 3;
            for _ in 0..(4 + next() % 8) {
                let a = i.constant(&format!("c{}", next() % dom));
                let b = i.constant(&format!("c{}", next() % dom));
                db.insert(e, vec![a, b]);
            }
            let nv = 2 + next() % 3;
            let mut atoms = Vec::new();
            for _ in 0..(2 + next() % 3) {
                let x = i.var(&format!("v{}", next() % nv));
                let y = i.var(&format!("v{}", next() % nv));
                atoms.push(wdpt_model::Atom::new(e, vec![x.into(), y.into()]));
            }
            let query = ConjunctiveQuery::boolean(atoms);
            let expected = backtrack::extend_exists(&db, query.body(), &Mapping::empty());
            let plan = StructuredPlan::for_query_tw(&query, 3).expect("tiny query");
            let got = boolean_eval_structured(&query, &db, &plan, &Mapping::empty());
            assert_eq!(got, expected, "case {case} disagreed");
        }
    }

    #[test]
    fn candidate_profile_reflects_filtering() {
        let (mut i, db) = path_db(4);
        // n4 has no outgoing edge, n0 no incoming: ?b excludes both ends.
        let query = q(&mut i, &[], "e(?a,?b) e(?b,?c)");
        let profile = candidate_profile(&db, &query);
        let b = i.var("b");
        assert_eq!(profile[&b], 3); // n1, n2, n3
    }
}
