//! Counting homomorphisms by dynamic programming over a decomposition.
//!
//! The classes `TW(k)` / `HW(k)` admit not only polynomial Boolean
//! evaluation but also polynomial *counting* of full homomorphisms, by the
//! standard bottom-up product-of-sums over a join tree: with `N(t, τ)` the
//! number of extensions of bag tuple `τ` into the subtree below `t`,
//!
//! `N(t, τ) = Π_{c child of t} Σ_{τ_c compatible with τ} N(c, τ_c)`.
//!
//! The running-intersection property guarantees every variable is counted
//! exactly once (at its topmost bag), so `Σ_τ N(root, τ)` is the number of
//! homomorphisms from the query's body into the database. The benchmark
//! harness uses this to report workload output sizes without enumerating.
//!
//! (Counting *answers* — projections onto a head — is #P-hard even for
//! acyclic queries and is deliberately not offered.)

use crate::query::ConjunctiveQuery;
use crate::structured::StructuredPlan;
use std::collections::{BTreeSet, HashMap};
use wdpt_model::{Database, Mapping, Var};

/// Counts the homomorphisms from `q`'s body into `db` (full assignments of
/// all body variables), using the bag relations of `plan`. Polynomial for
/// fixed width.
pub fn count_homomorphisms(q: &ConjunctiveQuery, db: &Database, plan: &StructuredPlan) -> u128 {
    let Some((bags, relations, parent, order)) = plan.materialize_all(q, db) else {
        return 0;
    };
    let n = bags.len();
    // children lists
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots = Vec::new();
    for (t, &p) in parent.iter().enumerate() {
        if p == usize::MAX {
            roots.push(t);
        } else {
            children[p].push(t);
        }
    }
    // Count of variables introduced below must each appear in some bag;
    // process bottom-up accumulating N.
    let mut counts: Vec<Vec<u128>> = relations.iter().map(|r| vec![1u128; r.len()]).collect();
    for &t in order.iter().rev() {
        let p = parent[t];
        if p == usize::MAX {
            continue;
        }
        let shared: BTreeSet<Var> = bags[t].intersection(&bags[p]).copied().collect();
        // Sum child counts per shared-projection key.
        let mut sums: HashMap<Mapping, u128> = HashMap::new();
        for (idx, tau) in relations[t].iter().enumerate() {
            *sums.entry(tau.restrict(&shared)).or_insert(0) += counts[t][idx];
        }
        for (idx, tau) in relations[p].iter().enumerate() {
            let key = tau.restrict(&shared);
            let s = sums.get(&key).copied().unwrap_or(0);
            counts[p][idx] = counts[p][idx].saturating_mul(s);
        }
    }
    // Roots of different components are variable-disjoint: multiply.
    roots
        .iter()
        .map(|&r| counts[r].iter().copied().fold(0u128, u128::saturating_add))
        .fold(1u128, u128::saturating_mul)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtrack::extend_all;
    use wdpt_model::parse::{parse_atoms, parse_database};
    use wdpt_model::Interner;

    fn q(i: &mut Interner, body: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(parse_atoms(i, body).unwrap())
    }

    #[test]
    fn counts_path_homomorphisms() {
        let mut i = Interner::new();
        let db = parse_database(&mut i, "e(a,b) e(b,c) e(c,d) e(a,c)").unwrap();
        let query = q(&mut i, "e(?x,?y) e(?y,?z)");
        let plan = StructuredPlan::for_query_tw(&query, 1).unwrap();
        let expected = extend_all(&db, query.body(), &Mapping::empty()).len() as u128;
        assert_eq!(count_homomorphisms(&query, &db, &plan), expected);
        assert_eq!(expected, 3);
    }

    #[test]
    fn counts_triangles_with_hw_plan() {
        let mut i = Interner::new();
        let db = parse_database(&mut i, "e(1,2) e(2,3) e(3,1) e(2,1)").unwrap();
        let query = q(&mut i, "e(?x,?y) e(?y,?z) e(?z,?x)");
        let plan = StructuredPlan::for_query_hw(&query, 2).unwrap();
        let expected = extend_all(&db, query.body(), &Mapping::empty()).len() as u128;
        assert_eq!(count_homomorphisms(&query, &db, &plan), expected);
    }

    #[test]
    fn unsatisfiable_counts_zero() {
        let mut i = Interner::new();
        let db = parse_database(&mut i, "e(a,b)").unwrap();
        let query = q(&mut i, "e(?x,?x)");
        let plan = StructuredPlan::for_query_tw(&query, 1).unwrap();
        assert_eq!(count_homomorphisms(&query, &db, &plan), 0);
    }

    #[test]
    fn disconnected_queries_multiply() {
        let mut i = Interner::new();
        let db = parse_database(&mut i, "e(a,b) e(b,c) f(x,y) f(y,z)").unwrap();
        let query = q(&mut i, "e(?u,?v) f(?s,?t)");
        let plan = StructuredPlan::for_query_tw(&query, 1).unwrap();
        // 2 e-edges × 2 f-edges = 4 homomorphisms.
        assert_eq!(count_homomorphisms(&query, &db, &plan), 4);
    }

    #[test]
    fn random_instances_match_enumeration() {
        let mut state = 0x1357_9bdfu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for case in 0..30 {
            let mut i = Interner::new();
            let e = i.pred("e");
            let mut db = wdpt_model::Database::new();
            for _ in 0..(3 + next() % 10) {
                let a = i.constant(&format!("c{}", next() % 4));
                let b = i.constant(&format!("c{}", next() % 4));
                db.insert(e, vec![a, b]);
            }
            let nv = 2 + next() % 3;
            let atoms: Vec<wdpt_model::Atom> = (0..(1 + next() % 3))
                .map(|_| {
                    let a = i.var(&format!("v{}", next() % nv));
                    let b = i.var(&format!("v{}", next() % nv));
                    wdpt_model::Atom::new(e, vec![a.into(), b.into()])
                })
                .collect();
            let query = ConjunctiveQuery::boolean(atoms);
            let plan = StructuredPlan::for_query_tw(&query, 3).unwrap();
            let expected = extend_all(&db, query.body(), &Mapping::empty()).len() as u128;
            assert_eq!(
                count_homomorphisms(&query, &db, &plan),
                expected,
                "case {case}"
            );
        }
    }
}
