//! Generic backtracking evaluation — the baseline engine for arbitrary CQs.
//!
//! This is the textbook index-nested-loop search: repeatedly pick the most
//! constrained unprocessed atom (most bound positions, then smallest
//! matching-tuple estimate), scan its matching tuples through the relation's
//! column indexes, extend the current partial mapping, and recurse. Its
//! worst case is exponential in the query size — exactly the `NP`-hardness
//! the paper's tractable classes are designed to avoid — but it serves as
//! (a) the general-purpose fallback and (b) the baseline the benchmark
//! harness compares the structured engines against.

use crate::query::ConjunctiveQuery;
use wdpt_model::{Atom, Const, Database, Mapping, Term};

/// Tunables of the backtracking search, exposed for the ablation
/// benchmarks. The default (`indexed matching + dynamic most-constrained
/// ordering`) is what every other entry point uses.
#[derive(Debug, Clone, Copy)]
pub struct BacktrackConfig {
    /// Use the per-column hash indexes when scanning matches; `false`
    /// forces full relation scans.
    pub use_index: bool,
    /// Re-select the most constrained atom at every step; `false` processes
    /// atoms in the fixed input order.
    pub dynamic_order: bool,
}

impl Default for BacktrackConfig {
    fn default() -> Self {
        BacktrackConfig {
            use_index: true,
            dynamic_order: true,
        }
    }
}

/// How a search should proceed after each discovered homomorphism.
enum Found {
    Continue,
    Stop,
}

/// Returns the match pattern of `atom` under `h`: bound positions carry
/// `Some(c)`.
fn pattern(atom: &Atom, h: &Mapping) -> Vec<Option<Const>> {
    atom.args
        .iter()
        .map(|t| match t {
            Term::Const(c) => Some(*c),
            Term::Var(v) => h.get(*v),
        })
        .collect()
}

/// Estimated number of matching tuples for ordering heuristics.
fn estimate(db: &Database, atom: &Atom, h: &Mapping) -> usize {
    match db.relation(atom.pred) {
        None => 0,
        Some(rel) => {
            let pat = pattern(atom, h);
            if pat.iter().all(Option::is_some) {
                // Fully bound: 0 or 1.
                usize::from(rel.contains(&pat.iter().map(|c| c.unwrap()).collect::<Vec<_>>()))
            } else {
                rel.len()
            }
        }
    }
}

fn search<F: FnMut(&Mapping) -> Found>(
    db: &Database,
    atoms: &[&Atom],
    done: &mut [bool],
    h: &mut Mapping,
    on_hom: &mut F,
    config: BacktrackConfig,
) -> Found {
    // Pick the next unprocessed atom: most constrained first by default,
    // fixed input order under the ablation config.
    let next = if config.dynamic_order {
        atoms
            .iter()
            .enumerate()
            .filter(|&(i, _)| !done[i])
            .max_by_key(|&(_, a)| {
                let bound = pattern(a, h).iter().filter(|p| p.is_some()).count();
                // Prefer many bound positions; break ties toward small relations.
                (bound, usize::MAX - estimate(db, a, h))
            })
            .map(|(i, _)| i)
    } else {
        (0..atoms.len()).find(|&i| !done[i])
    };
    let Some(i) = next else {
        return on_hom(h);
    };
    done[i] = true;
    let atom = atoms[i];
    let result = (|| {
        let Some(rel) = db.relation(atom.pred) else {
            return Found::Continue; // empty relation: no match, backtrack
        };
        let pat = pattern(atom, h);
        let tuples: Vec<Vec<Const>> = if config.use_index {
            rel.matching(&pat).map(<[Const]>::to_vec).collect()
        } else {
            rel.matching_unindexed(&pat).map(<[Const]>::to_vec).collect()
        };
        for tuple in tuples {
            // Extend h with the new bindings; tuples matching `pat` can only
            // conflict through repeated variables inside this atom.
            let mut added: Vec<wdpt_model::Var> = Vec::new();
            let mut ok = true;
            for (term, value) in atom.args.iter().zip(tuple.iter()) {
                if let Term::Var(v) = term {
                    if let Some(existing) = h.get(*v) {
                        if existing != *value {
                            ok = false;
                            break;
                        }
                    } else {
                        h.insert(*v, *value);
                        added.push(*v);
                    }
                }
            }
            if ok {
                if let Found::Stop = search(db, atoms, done, h, on_hom, config) {
                    for v in added {
                        h.remove(v);
                    }
                    return Found::Stop;
                }
            }
            for v in added {
                h.remove(v);
            }
        }
        Found::Continue
    })();
    done[i] = false;
    result
}

/// All homomorphisms from the atom set into `db` that extend `seed`,
/// i.e. total assignments of the atoms' variables consistent with `seed`
/// under which every atom is in `db`. The returned mappings include the
/// seed bindings for variables that occur in the atoms.
pub fn extend_all(db: &Database, atoms: &[Atom], seed: &Mapping) -> Vec<Mapping> {
    extend_all_config(db, atoms, seed, BacktrackConfig::default())
}

/// [`extend_all`] with explicit search tunables (ablation benchmarks).
pub fn extend_all_config(
    db: &Database,
    atoms: &[Atom],
    seed: &Mapping,
    config: BacktrackConfig,
) -> Vec<Mapping> {
    let refs: Vec<&Atom> = atoms.iter().collect();
    let mut done = vec![false; refs.len()];
    let mut h = relevant_seed(atoms, seed);
    let mut out = Vec::new();
    search(db, &refs, &mut done, &mut h, &mut |hom| {
        out.push(hom.clone());
        Found::Continue
    }, config);
    out
}

/// True iff at least one homomorphism extending `seed` exists.
pub fn extend_exists(db: &Database, atoms: &[Atom], seed: &Mapping) -> bool {
    extend_exists_config(db, atoms, seed, BacktrackConfig::default())
}

/// [`extend_exists`] with explicit search tunables (ablation benchmarks).
pub fn extend_exists_config(
    db: &Database,
    atoms: &[Atom],
    seed: &Mapping,
    config: BacktrackConfig,
) -> bool {
    let refs: Vec<&Atom> = atoms.iter().collect();
    let mut done = vec![false; refs.len()];
    let mut h = relevant_seed(atoms, seed);
    matches!(
        search(db, &refs, &mut done, &mut h, &mut |_| Found::Stop, config),
        Found::Stop
    )
}

/// Restricts `seed` to the variables occurring in `atoms` so that returned
/// homomorphisms have exactly the atoms' variables as domain.
fn relevant_seed(atoms: &[Atom], seed: &Mapping) -> Mapping {
    let vars = wdpt_model::atom::vars_of_atoms(atoms);
    seed.restrict(&vars)
}

/// The paper's `q(D)`: the set of restrictions `h_x̄` of homomorphisms from
/// `q` to `db`, as deduplicated mappings on the head variables.
pub fn evaluate(q: &ConjunctiveQuery, db: &Database) -> Vec<Mapping> {
    let head = q.head_set();
    let mut out: std::collections::BTreeSet<Mapping> = Default::default();
    let refs: Vec<&Atom> = q.body().iter().collect();
    let mut done = vec![false; refs.len()];
    let mut h = Mapping::empty();
    search(db, &refs, &mut done, &mut h, &mut |hom| {
        out.insert(hom.restrict(&head));
        Found::Continue
    }, BacktrackConfig::default());
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdpt_model::parse::{parse_atoms, parse_database, parse_mapping};
    use wdpt_model::Interner;

    fn setup() -> (Interner, Database) {
        let mut i = Interner::new();
        let db = parse_database(&mut i, "e(a,b) e(b,c) e(c,d) e(a,c)").unwrap();
        (i, db)
    }

    #[test]
    fn path_query_has_expected_answers() {
        let (mut i, db) = setup();
        let atoms = parse_atoms(&mut i, "e(?x,?y), e(?y,?z)").unwrap();
        let homs = extend_all(&db, &atoms, &Mapping::empty());
        // Paths of length 2: a-b-c, b-c-d, a-c-d.
        assert_eq!(homs.len(), 3);
    }

    #[test]
    fn seed_constrains_search() {
        let (mut i, db) = setup();
        let atoms = parse_atoms(&mut i, "e(?x,?y), e(?y,?z)").unwrap();
        let seed = parse_mapping(&mut i, "?x -> a").unwrap();
        let homs = extend_all(&db, &atoms, &seed);
        assert_eq!(homs.len(), 2); // a-b-c and a-c-d
        assert!(homs.iter().all(|h| h.get(i.var("x")) == Some(i.constant("a"))));
    }

    #[test]
    fn exists_short_circuits() {
        let (mut i, db) = setup();
        let atoms = parse_atoms(&mut i, "e(?x,?y), e(?y,?x)").unwrap();
        assert!(!extend_exists(&db, &atoms, &Mapping::empty()));
        let atoms2 = parse_atoms(&mut i, "e(?x,?y)").unwrap();
        assert!(extend_exists(&db, &atoms2, &Mapping::empty()));
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let mut i = Interner::new();
        let db = parse_database(&mut i, "r(a,a) r(a,b)").unwrap();
        let atoms = parse_atoms(&mut i, "r(?x,?x)").unwrap();
        let homs = extend_all(&db, &atoms, &Mapping::empty());
        assert_eq!(homs.len(), 1);
    }

    #[test]
    fn constants_in_atoms_restrict_matches() {
        let (mut i, db) = setup();
        let atoms = parse_atoms(&mut i, "e(a,?y)").unwrap();
        let homs = extend_all(&db, &atoms, &Mapping::empty());
        assert_eq!(homs.len(), 2); // b and c
    }

    #[test]
    fn evaluate_projects_and_dedups() {
        let (mut i, db) = setup();
        let atoms = parse_atoms(&mut i, "e(?x,?y)").unwrap();
        let q = ConjunctiveQuery::new(vec![i.var("x")], atoms);
        let ans = evaluate(&q, &db);
        // Sources: a (twice, deduped), b, c.
        assert_eq!(ans.len(), 3);
    }

    #[test]
    fn empty_body_yields_empty_mapping() {
        let (_, db) = setup();
        let homs = extend_all(&db, &[], &Mapping::empty());
        assert_eq!(homs, vec![Mapping::empty()]);
    }

    #[test]
    fn missing_relation_yields_no_homs() {
        let (mut i, db) = setup();
        let atoms = parse_atoms(&mut i, "unknown(?x)").unwrap();
        assert!(extend_all(&db, &atoms, &Mapping::empty()).is_empty());
        assert!(!extend_exists(&db, &atoms, &Mapping::empty()));
    }

    #[test]
    fn seed_outside_atom_vars_is_ignored() {
        let (mut i, db) = setup();
        let atoms = parse_atoms(&mut i, "e(?x,?y)").unwrap();
        let seed = parse_mapping(&mut i, "?unrelated -> a").unwrap();
        let homs = extend_all(&db, &atoms, &seed);
        assert_eq!(homs.len(), 4);
        assert!(homs.iter().all(|h| h.len() == 2));
    }

    #[test]
    fn boolean_query_on_triangle() {
        let mut i = Interner::new();
        let db = parse_database(&mut i, "e(1,2) e(2,3) e(3,1)").unwrap();
        let atoms = parse_atoms(&mut i, "e(?x,?y) e(?y,?z) e(?z,?x)").unwrap();
        assert!(extend_exists(&db, &atoms, &Mapping::empty()));
        let homs = extend_all(&db, &atoms, &Mapping::empty());
        assert_eq!(homs.len(), 3); // three rotations
    }
}
