//! Generic backtracking evaluation — the baseline engine for arbitrary CQs.
//!
//! This is the textbook index-nested-loop search: repeatedly pick the most
//! constrained unprocessed atom (most bound positions, then smallest
//! matching-tuple estimate), scan its matching tuples through the relation's
//! column indexes, extend the current partial mapping, and recurse. Its
//! worst case is exponential in the query size — exactly the `NP`-hardness
//! the paper's tractable classes are designed to avoid — but it serves as
//! (a) the general-purpose fallback and (b) the baseline the benchmark
//! harness compares the structured engines against.

use crate::query::ConjunctiveQuery;
use std::cell::Cell;
use wdpt_model::{Atom, CancelToken, Cancelled, Const, Database, Mapping, Term};

/// Tunables of the backtracking search, exposed for the ablation
/// benchmarks. The default (`indexed matching + dynamic most-constrained
/// ordering`) is what every other entry point uses.
#[derive(Debug, Clone, Copy)]
pub struct BacktrackConfig {
    /// Use the per-column hash indexes when scanning matches; `false`
    /// forces full relation scans.
    pub use_index: bool,
    /// Re-select the most constrained atom at every step; `false` processes
    /// atoms in the fixed input order.
    pub dynamic_order: bool,
}

impl Default for BacktrackConfig {
    fn default() -> Self {
        BacktrackConfig {
            use_index: true,
            dynamic_order: true,
        }
    }
}

/// How a search should proceed after each discovered homomorphism.
enum Found {
    Continue,
    Stop,
    /// The cancel token fired: unwind immediately, discarding progress.
    Cancelled,
}

/// Per-search cancellation state: the shared token plus the step counter
/// that amortizes its deadline clock checks (a `Cell` so the recursive
/// search can bump it through a shared reference).
struct Ctl<'a> {
    token: &'a CancelToken,
    steps: Cell<u32>,
}

impl<'a> Ctl<'a> {
    fn new(token: &'a CancelToken) -> Ctl<'a> {
        Ctl {
            token,
            steps: Cell::new(0),
        }
    }

    /// One relaxed load per call — the same fast-path budget as the obs
    /// enabled-flag — with the clock consulted only every ~1k steps.
    #[inline]
    fn cancelled(&self) -> bool {
        let mut steps = self.steps.get();
        let stop = self.token.should_stop(&mut steps);
        self.steps.set(steps);
        stop
    }
}

/// Returns the match pattern of `atom` under `h`: bound positions carry
/// `Some(c)`.
fn pattern(atom: &Atom, h: &Mapping) -> Vec<Option<Const>> {
    atom.args
        .iter()
        .map(|t| match t {
            Term::Const(c) => Some(*c),
            Term::Var(v) => h.get(*v),
        })
        .collect()
}

/// Estimated number of matching tuples for ordering heuristics: exact for
/// fully-bound atoms, the shortest posting list among bound columns for
/// partially-bound atoms (the seed returned `rel.len()` there, which
/// mis-ranked selective partially-bound atoms behind small relations), and
/// the relation size for unbound atoms. With `use_index = false` (the
/// index-ablation config) posting lists are off limits, so partially-bound
/// atoms fall back to the relation size.
pub(crate) fn estimate(db: &Database, atom: &Atom, h: &Mapping, use_index: bool) -> usize {
    match db.relation(atom.pred) {
        None => 0,
        Some(rel) => {
            let pat = pattern(atom, h);
            if use_index {
                rel.estimate_matching(&pat)
            } else if pat.iter().all(Option::is_some) {
                usize::from(rel.contains(&pat.iter().map(|c| c.unwrap()).collect::<Vec<_>>()))
            } else {
                rel.len()
            }
        }
    }
}

fn search<F: FnMut(&Mapping) -> Found>(
    db: &Database,
    atoms: &[&Atom],
    done: &mut [bool],
    h: &mut Mapping,
    on_hom: &mut F,
    config: BacktrackConfig,
    ctl: &Ctl<'_>,
) -> Found {
    if ctl.cancelled() {
        return Found::Cancelled;
    }
    // Pick the next unprocessed atom: most constrained first by default,
    // fixed input order under the ablation config.
    let next = if config.dynamic_order {
        atoms
            .iter()
            .enumerate()
            .filter(|&(i, _)| !done[i])
            .max_by_key(|&(_, a)| {
                let bound = pattern(a, h).iter().filter(|p| p.is_some()).count();
                // Prefer many bound positions; break ties toward few matches.
                (bound, usize::MAX - estimate(db, a, h, config.use_index))
            })
            .map(|(i, _)| i)
    } else {
        (0..atoms.len()).find(|&i| !done[i])
    };
    let Some(i) = next else {
        return on_hom(h);
    };
    done[i] = true;
    wdpt_model::stats::record_node_expanded();
    let atom = atoms[i];
    let result = (|| {
        let Some(rel) = db.relation(atom.pred) else {
            return Found::Continue; // empty relation: no match, backtrack
        };
        let pat = pattern(atom, h);
        // Iterate the postings directly — `db` is borrowed immutably for
        // the whole search, only `h`/`done` mutate, so there is no need to
        // materialize a `Vec<Vec<Const>>` of matches at every search node
        // (the seed did, making allocation the dominant cost on large
        // relations).
        let tuples: Box<dyn Iterator<Item = &[Const]>> = if config.use_index {
            rel.matching(&pat)
        } else {
            Box::new(rel.matching_unindexed(&pat))
        };
        for tuple in tuples {
            // Extend h with the new bindings; tuples matching `pat` can only
            // conflict through repeated variables inside this atom.
            let mut added: Vec<wdpt_model::Var> = Vec::new();
            let mut ok = true;
            for (term, value) in atom.args.iter().zip(tuple.iter()) {
                if let Term::Var(v) = term {
                    if let Some(existing) = h.get(*v) {
                        if existing != *value {
                            ok = false;
                            break;
                        }
                    } else {
                        h.insert(*v, *value);
                        added.push(*v);
                    }
                }
            }
            if ok {
                match search(db, atoms, done, h, on_hom, config, ctl) {
                    Found::Continue => {}
                    stop => {
                        for v in added {
                            h.remove(v);
                        }
                        return stop;
                    }
                }
            }
            for v in added {
                h.remove(v);
            }
        }
        Found::Continue
    })();
    done[i] = false;
    result
}

/// All homomorphisms from the atom set into `db` that extend `seed`,
/// i.e. total assignments of the atoms' variables consistent with `seed`
/// under which every atom is in `db`. The returned mappings include the
/// seed bindings for variables that occur in the atoms.
pub fn extend_all(db: &Database, atoms: &[Atom], seed: &Mapping) -> Vec<Mapping> {
    extend_all_config(db, atoms, seed, BacktrackConfig::default())
}

/// [`extend_all`] with explicit search tunables (ablation benchmarks).
pub fn extend_all_config(
    db: &Database,
    atoms: &[Atom],
    seed: &Mapping,
    config: BacktrackConfig,
) -> Vec<Mapping> {
    try_extend_all_config(db, atoms, seed, config, CancelToken::never())
        .expect("the never token cannot cancel")
}

/// [`extend_all`] under a cancel token: `Err(Cancelled)` if the token
/// fires mid-search, discarding partial results.
pub fn try_extend_all(
    db: &Database,
    atoms: &[Atom],
    seed: &Mapping,
    token: &CancelToken,
) -> Result<Vec<Mapping>, Cancelled> {
    try_extend_all_config(db, atoms, seed, BacktrackConfig::default(), token)
}

/// [`try_extend_all`] with explicit search tunables.
pub fn try_extend_all_config(
    db: &Database,
    atoms: &[Atom],
    seed: &Mapping,
    config: BacktrackConfig,
    token: &CancelToken,
) -> Result<Vec<Mapping>, Cancelled> {
    let _span = wdpt_obs::span!("cq.backtrack.extend_all");
    let refs: Vec<&Atom> = atoms.iter().collect();
    let mut done = vec![false; refs.len()];
    let mut h = relevant_seed(atoms, seed);
    let mut out = Vec::new();
    let ctl = Ctl::new(token);
    match search(
        db,
        &refs,
        &mut done,
        &mut h,
        &mut |hom| {
            out.push(hom.clone());
            Found::Continue
        },
        config,
        &ctl,
    ) {
        Found::Cancelled => Err(Cancelled),
        _ => Ok(out),
    }
}

/// True iff `order` is a permutation of `0..n` — the precondition for the
/// planned entry points to execute it as a static atom order.
fn valid_order(order: &[usize], n: usize) -> bool {
    if order.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    order
        .iter()
        .all(|&i| i < n && !std::mem::replace(&mut seen[i], true))
}

/// [`try_extend_all`] executing a *planned* static atom order instead of
/// the dynamic most-constrained heuristic: atoms are processed exactly in
/// the sequence `atoms[order[0]], atoms[order[1]], …`. This is the hook
/// the cost-based planner drives — the plan layer picks the permutation
/// from its cardinality estimates, and this function executes it verbatim
/// (indexes stay on; only the ordering heuristic is replaced).
///
/// If `order` is not a permutation of `0..atoms.len()` (a plan built for a
/// different query shape), the call degrades to the dynamic default rather
/// than failing — a stale plan must never change answers.
pub fn try_extend_all_ordered(
    db: &Database,
    atoms: &[Atom],
    order: &[usize],
    seed: &Mapping,
    token: &CancelToken,
) -> Result<Vec<Mapping>, Cancelled> {
    if !valid_order(order, atoms.len()) {
        return try_extend_all(db, atoms, seed, token);
    }
    let permuted: Vec<Atom> = order.iter().map(|&i| atoms[i].clone()).collect();
    try_extend_all_config(
        db,
        &permuted,
        seed,
        BacktrackConfig {
            use_index: true,
            dynamic_order: false,
        },
        token,
    )
}

/// [`try_extend_exists`] executing a planned static atom order; see
/// [`try_extend_all_ordered`] for the contract.
pub fn try_extend_exists_ordered(
    db: &Database,
    atoms: &[Atom],
    order: &[usize],
    seed: &Mapping,
    token: &CancelToken,
) -> Result<bool, Cancelled> {
    if !valid_order(order, atoms.len()) {
        return try_extend_exists(db, atoms, seed, token);
    }
    let permuted: Vec<Atom> = order.iter().map(|&i| atoms[i].clone()).collect();
    try_extend_exists_config(
        db,
        &permuted,
        seed,
        BacktrackConfig {
            use_index: true,
            dynamic_order: false,
        },
        token,
    )
}

/// True iff at least one homomorphism extending `seed` exists.
pub fn extend_exists(db: &Database, atoms: &[Atom], seed: &Mapping) -> bool {
    extend_exists_config(db, atoms, seed, BacktrackConfig::default())
}

/// [`extend_exists`] with explicit search tunables (ablation benchmarks).
pub fn extend_exists_config(
    db: &Database,
    atoms: &[Atom],
    seed: &Mapping,
    config: BacktrackConfig,
) -> bool {
    try_extend_exists_config(db, atoms, seed, config, CancelToken::never())
        .expect("the never token cannot cancel")
}

/// [`extend_exists`] under a cancel token.
pub fn try_extend_exists(
    db: &Database,
    atoms: &[Atom],
    seed: &Mapping,
    token: &CancelToken,
) -> Result<bool, Cancelled> {
    try_extend_exists_config(db, atoms, seed, BacktrackConfig::default(), token)
}

/// [`try_extend_exists`] with explicit search tunables.
pub fn try_extend_exists_config(
    db: &Database,
    atoms: &[Atom],
    seed: &Mapping,
    config: BacktrackConfig,
    token: &CancelToken,
) -> Result<bool, Cancelled> {
    let _span = wdpt_obs::span!("cq.backtrack.extend_exists");
    let refs: Vec<&Atom> = atoms.iter().collect();
    let mut done = vec![false; refs.len()];
    let mut h = relevant_seed(atoms, seed);
    let ctl = Ctl::new(token);
    match search(
        db,
        &refs,
        &mut done,
        &mut h,
        &mut |_| Found::Stop,
        config,
        &ctl,
    ) {
        Found::Cancelled => Err(Cancelled),
        Found::Stop => Ok(true),
        Found::Continue => Ok(false),
    }
}

/// Restricts `seed` to the variables occurring in `atoms` so that returned
/// homomorphisms have exactly the atoms' variables as domain.
fn relevant_seed(atoms: &[Atom], seed: &Mapping) -> Mapping {
    let vars = wdpt_model::atom::vars_of_atoms(atoms);
    seed.restrict(&vars)
}

/// The paper's `q(D)`: the set of restrictions `h_x̄` of homomorphisms from
/// `q` to `db`, as deduplicated mappings on the head variables.
pub fn evaluate(q: &ConjunctiveQuery, db: &Database) -> Vec<Mapping> {
    let _span = wdpt_obs::span!("cq.backtrack.evaluate");
    let head = q.head_set();
    let mut out: std::collections::BTreeSet<Mapping> = Default::default();
    let refs: Vec<&Atom> = q.body().iter().collect();
    let mut done = vec![false; refs.len()];
    let mut h = Mapping::empty();
    let ctl = Ctl::new(CancelToken::never());
    search(
        db,
        &refs,
        &mut done,
        &mut h,
        &mut |hom| {
            out.insert(hom.restrict(&head));
            Found::Continue
        },
        BacktrackConfig::default(),
        &ctl,
    );
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdpt_model::parse::{parse_atoms, parse_database, parse_mapping};
    use wdpt_model::Interner;

    fn setup() -> (Interner, Database) {
        let mut i = Interner::new();
        let db = parse_database(&mut i, "e(a,b) e(b,c) e(c,d) e(a,c)").unwrap();
        (i, db)
    }

    #[test]
    fn path_query_has_expected_answers() {
        let (mut i, db) = setup();
        let atoms = parse_atoms(&mut i, "e(?x,?y), e(?y,?z)").unwrap();
        let homs = extend_all(&db, &atoms, &Mapping::empty());
        // Paths of length 2: a-b-c, b-c-d, a-c-d.
        assert_eq!(homs.len(), 3);
    }

    #[test]
    fn seed_constrains_search() {
        let (mut i, db) = setup();
        let atoms = parse_atoms(&mut i, "e(?x,?y), e(?y,?z)").unwrap();
        let seed = parse_mapping(&mut i, "?x -> a").unwrap();
        let homs = extend_all(&db, &atoms, &seed);
        assert_eq!(homs.len(), 2); // a-b-c and a-c-d
        assert!(homs
            .iter()
            .all(|h| h.get(i.var("x")) == Some(i.constant("a"))));
    }

    #[test]
    fn exists_short_circuits() {
        let (mut i, db) = setup();
        let atoms = parse_atoms(&mut i, "e(?x,?y), e(?y,?x)").unwrap();
        assert!(!extend_exists(&db, &atoms, &Mapping::empty()));
        let atoms2 = parse_atoms(&mut i, "e(?x,?y)").unwrap();
        assert!(extend_exists(&db, &atoms2, &Mapping::empty()));
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let mut i = Interner::new();
        let db = parse_database(&mut i, "r(a,a) r(a,b)").unwrap();
        let atoms = parse_atoms(&mut i, "r(?x,?x)").unwrap();
        let homs = extend_all(&db, &atoms, &Mapping::empty());
        assert_eq!(homs.len(), 1);
    }

    #[test]
    fn constants_in_atoms_restrict_matches() {
        let (mut i, db) = setup();
        let atoms = parse_atoms(&mut i, "e(a,?y)").unwrap();
        let homs = extend_all(&db, &atoms, &Mapping::empty());
        assert_eq!(homs.len(), 2); // b and c
    }

    #[test]
    fn evaluate_projects_and_dedups() {
        let (mut i, db) = setup();
        let atoms = parse_atoms(&mut i, "e(?x,?y)").unwrap();
        let q = ConjunctiveQuery::new(vec![i.var("x")], atoms);
        let ans = evaluate(&q, &db);
        // Sources: a (twice, deduped), b, c.
        assert_eq!(ans.len(), 3);
    }

    #[test]
    fn empty_body_yields_empty_mapping() {
        let (_, db) = setup();
        let homs = extend_all(&db, &[], &Mapping::empty());
        assert_eq!(homs, vec![Mapping::empty()]);
    }

    #[test]
    fn missing_relation_yields_no_homs() {
        let (mut i, db) = setup();
        let atoms = parse_atoms(&mut i, "unknown(?x)").unwrap();
        assert!(extend_all(&db, &atoms, &Mapping::empty()).is_empty());
        assert!(!extend_exists(&db, &atoms, &Mapping::empty()));
    }

    #[test]
    fn seed_outside_atom_vars_is_ignored() {
        let (mut i, db) = setup();
        let atoms = parse_atoms(&mut i, "e(?x,?y)").unwrap();
        let seed = parse_mapping(&mut i, "?unrelated -> a").unwrap();
        let homs = extend_all(&db, &atoms, &seed);
        assert_eq!(homs.len(), 4);
        assert!(homs.iter().all(|h| h.len() == 2));
    }

    #[test]
    fn estimate_ranks_partially_bound_atoms_by_posting_list() {
        let mut i = Interner::new();
        // big/2 has 60 tuples but at most one per ?y value; small/2 has 10.
        let mut spec = String::new();
        for j in 0..60 {
            spec.push_str(&format!("big(s{j},t{j}) "));
        }
        for j in 0..10 {
            spec.push_str(&format!("small(a{j},b{j}) "));
        }
        let db = parse_database(&mut i, &spec).unwrap();
        let atoms = parse_atoms(&mut i, "big(?x,?y), small(?z,?w)").unwrap();
        let seed = parse_mapping(&mut i, "?y -> t7").unwrap();
        // Bound on ?y, the big atom has a 1-element posting list; the seed
        // implementation returned rel.len() = 60 and ranked it *behind* the
        // unbound small atom (10).
        assert_eq!(estimate(&db, &atoms[0], &seed, true), 1);
        assert_eq!(estimate(&db, &atoms[1], &seed, true), 10);
        // Unbound, the big atom estimates its full size.
        assert_eq!(estimate(&db, &atoms[0], &Mapping::empty(), true), 60);
        // The index-free ablation cannot consult posting lists.
        assert_eq!(estimate(&db, &atoms[0], &seed, false), 60);
    }

    #[test]
    fn dynamic_order_picks_the_selective_atom_first() {
        let mut i = Interner::new();
        // Both atoms have one bound position under the seed, so only the
        // match estimate decides the order. a/2 is the larger relation but
        // its x=c0 posting list has a single entry; every b/2 tuple has
        // x=c0. The seed estimate (relation size) ranked b first and
        // expanded 1 + |b| nodes; the posting-list estimate expands a
        // first, for 2 nodes total.
        let mut spec = String::from("a(c0,u0) ");
        for j in 0..1100 {
            spec.push_str(&format!("a(g{j},h{j}) "));
        }
        for j in 0..1000 {
            spec.push_str(&format!("b(c0,v{j}) "));
        }
        let db = parse_database(&mut i, &spec).unwrap();
        let atoms = parse_atoms(&mut i, "a(?x,?u), b(?x,?v)").unwrap();
        let seed = parse_mapping(&mut i, "?x -> c0").unwrap();
        let before = wdpt_model::stats::snapshot();
        let homs = extend_all(&db, &atoms, &seed);
        let delta = wdpt_model::stats::snapshot().since(&before);
        assert_eq!(homs.len(), 1000);
        // The mis-ranked order expands 1001 nodes; the fixed one expands 2.
        // The slack absorbs other tests running concurrently (the counters
        // are process-wide).
        assert!(
            delta.nodes_expanded <= 500,
            "selective atom was not processed first: {} nodes",
            delta.nodes_expanded
        );
    }

    #[test]
    fn cancelled_token_aborts_search() {
        let (mut i, db) = setup();
        let atoms = parse_atoms(&mut i, "e(?x,?y), e(?y,?z)").unwrap();
        let token = CancelToken::new();
        token.cancel();
        assert_eq!(
            try_extend_all(&db, &atoms, &Mapping::empty(), &token),
            Err(Cancelled)
        );
        assert_eq!(
            try_extend_exists(&db, &atoms, &Mapping::empty(), &token),
            Err(Cancelled)
        );
        // A live token behaves exactly like the plain entry points.
        let live = CancelToken::new();
        let homs = try_extend_all(&db, &atoms, &Mapping::empty(), &live).unwrap();
        assert_eq!(homs, extend_all(&db, &atoms, &Mapping::empty()));
    }

    #[test]
    fn expired_deadline_aborts_search() {
        let (mut i, db) = setup();
        let atoms = parse_atoms(&mut i, "e(?x,?y), e(?y,?z)").unwrap();
        let token = CancelToken::with_deadline(std::time::Duration::ZERO);
        token.poll_deadline(); // latch the expiry
        assert_eq!(
            try_extend_all(&db, &atoms, &Mapping::empty(), &token),
            Err(Cancelled)
        );
    }

    #[test]
    fn ordered_execution_follows_the_given_permutation() {
        let mut i = Interner::new();
        // small: 2 rows; fan: fan-out 100 from each small value; filter: 1.
        let mut spec = String::from("small(a) small(b) filter(y0) ");
        for s in ["a", "b"] {
            for j in 0..100 {
                spec.push_str(&format!("fan({s},y{j}) "));
            }
        }
        let db = parse_database(&mut i, &spec).unwrap();
        let atoms = parse_atoms(&mut i, "small(?x), fan(?x,?y), filter(?y)").unwrap();
        let token = CancelToken::new();
        // Bad order: small → fan explodes the frontier before filter prunes.
        let before = wdpt_model::stats::snapshot();
        let bad =
            try_extend_all_ordered(&db, &atoms, &[0, 1, 2], &Mapping::empty(), &token).unwrap();
        let bad_nodes = wdpt_model::stats::snapshot().since(&before).nodes_expanded;
        // Good order: filter first keeps the frontier at 1.
        let before = wdpt_model::stats::snapshot();
        let good =
            try_extend_all_ordered(&db, &atoms, &[2, 1, 0], &Mapping::empty(), &token).unwrap();
        let good_nodes = wdpt_model::stats::snapshot().since(&before).nodes_expanded;
        // Same answers either way; radically different work.
        let mut b = bad.clone();
        let mut g = good.clone();
        b.sort();
        g.sort();
        assert_eq!(b, g);
        assert_eq!(good.len(), 2);
        assert!(
            good_nodes * 10 <= bad_nodes,
            "expected ≥10× gap, got {good_nodes} vs {bad_nodes}"
        );
    }

    #[test]
    fn invalid_order_degrades_to_dynamic() {
        let (mut i, db) = setup();
        let atoms = parse_atoms(&mut i, "e(?x,?y), e(?y,?z)").unwrap();
        let token = CancelToken::new();
        // Wrong length and duplicate entries both fall back cleanly.
        for order in [&[0usize][..], &[0, 0][..], &[1, 2][..]] {
            let homs =
                try_extend_all_ordered(&db, &atoms, order, &Mapping::empty(), &token).unwrap();
            assert_eq!(homs.len(), 3, "order {order:?}");
            assert!(
                try_extend_exists_ordered(&db, &atoms, order, &Mapping::empty(), &token).unwrap()
            );
        }
    }

    #[test]
    fn ordered_exists_short_circuits() {
        let (mut i, db) = setup();
        let atoms = parse_atoms(&mut i, "e(?x,?y), e(?y,?z)").unwrap();
        let token = CancelToken::new();
        assert!(
            try_extend_exists_ordered(&db, &atoms, &[1, 0], &Mapping::empty(), &token).unwrap()
        );
        let none = parse_atoms(&mut i, "e(?x,?y), e(?y,?x)").unwrap();
        assert!(
            !try_extend_exists_ordered(&db, &none, &[1, 0], &Mapping::empty(), &token).unwrap()
        );
    }

    #[test]
    fn boolean_query_on_triangle() {
        let mut i = Interner::new();
        let db = parse_database(&mut i, "e(1,2) e(2,3) e(3,1)").unwrap();
        let atoms = parse_atoms(&mut i, "e(?x,?y) e(?y,?z) e(?z,?x)").unwrap();
        assert!(extend_exists(&db, &atoms, &Mapping::empty()));
        let homs = extend_all(&db, &atoms, &Mapping::empty());
        assert_eq!(homs.len(), 3); // three rotations
    }
}
