//! Quotient queries: the candidate space of `TW(k)`-approximations.
//!
//! A *quotient* of a CQ `q` is obtained by merging variables — applying an
//! idempotent substitution `θ` and taking the atom-set image `q/θ`. Since
//! `q` maps homomorphically onto each of its quotients, `q/θ ⊆ q` always
//! holds. Barceló–Libkin–Romero ([4] in the paper) show that every
//! `TW(k)`-approximation of `q` is equivalent to a ⊆-maximal quotient of
//! `q` of treewidth ≤ k; the approximation machinery of `wdpt-approx`
//! enumerates exactly this space.
//!
//! Head variables must stay pairwise distinct (merging them would change
//! the answer schema), and a class containing a head variable is
//! represented by that head variable.

use crate::query::ConjunctiveQuery;
use std::collections::{BTreeMap, BTreeSet};
use wdpt_model::{Atom, Term, Var};

/// Applies a variable → variable substitution to a body, deduplicating the
/// resulting atom set.
pub fn apply_var_subst(body: &[Atom], subst: &BTreeMap<Var, Var>) -> Vec<Atom> {
    let mut out: BTreeSet<Atom> = BTreeSet::new();
    for atom in body {
        let args = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Var(v) => Term::Var(*subst.get(v).unwrap_or(v)),
                Term::Const(c) => Term::Const(*c),
            })
            .collect();
        out.insert(Atom::new(atom.pred, args));
    }
    out.into_iter().collect()
}

/// Practical ceiling for quotient enumeration (Bell numbers grow fast).
pub const QUOTIENT_VAR_LIMIT: usize = 12;

/// Enumerates all quotients of `q`: partitions of the variable set in which
/// no two head variables share a class. Each partition yields the CQ whose
/// body is the substituted (deduplicated) atom set and whose head is that of
/// `q`. The identity quotient (`q` itself, atoms deduplicated) is included.
///
/// # Panics
/// Panics if `q` has more than [`QUOTIENT_VAR_LIMIT`] variables — the
/// enumeration is exponential by nature (this mirrors the single-exponential
/// approximation bound of [4]).
pub fn quotients(q: &ConjunctiveQuery) -> Vec<ConjunctiveQuery> {
    let vars: Vec<Var> = q.variables().into_iter().collect();
    assert!(
        vars.len() <= QUOTIENT_VAR_LIMIT,
        "quotient enumeration limited to {QUOTIENT_VAR_LIMIT} variables (got {})",
        vars.len()
    );
    let head: BTreeSet<Var> = q.head_set();
    let mut out = Vec::new();
    // Restricted-growth enumeration of set partitions: classes[i] lists the
    // variables of class i.
    let mut classes: Vec<Vec<Var>> = Vec::new();
    fn rec(
        q: &ConjunctiveQuery,
        vars: &[Var],
        head: &BTreeSet<Var>,
        idx: usize,
        classes: &mut Vec<Vec<Var>>,
        out: &mut Vec<ConjunctiveQuery>,
    ) {
        if idx == vars.len() {
            // Build the substitution: representative is the head variable of
            // the class if present, else the smallest variable.
            let mut subst: BTreeMap<Var, Var> = BTreeMap::new();
            for class in classes.iter() {
                let rep = class
                    .iter()
                    .copied()
                    .find(|v| head.contains(v))
                    .unwrap_or_else(|| *class.iter().min().expect("non-empty class"));
                for &v in class {
                    subst.insert(v, rep);
                }
            }
            let body = apply_var_subst(q.body(), &subst);
            out.push(ConjunctiveQuery::new(q.head().to_vec(), body));
            return;
        }
        let v = vars[idx];
        let is_head = head.contains(&v);
        for c in 0..classes.len() {
            // No two head variables in one class.
            if is_head && classes[c].iter().any(|w| head.contains(w)) {
                continue;
            }
            classes[c].push(v);
            rec(q, vars, head, idx + 1, classes, out);
            classes[c].pop();
        }
        classes.push(vec![v]);
        rec(q, vars, head, idx + 1, classes, out);
        classes.pop();
    }
    rec(q, &vars, &head, 0, &mut classes, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::contained_in;
    use wdpt_model::parse::parse_atoms;
    use wdpt_model::Interner;

    fn q(i: &mut Interner, head: &[&str], body: &str) -> ConjunctiveQuery {
        let atoms = parse_atoms(i, body).unwrap();
        let head = head.iter().map(|n| i.var(n)).collect();
        ConjunctiveQuery::new(head, atoms)
    }

    #[test]
    fn quotient_count_is_bell_number() {
        let mut i = Interner::new();
        // 3 existential variables → B(3) = 5 partitions.
        let query = q(&mut i, &[], "e(?a,?b) e(?b,?c)");
        assert_eq!(quotients(&query).len(), 5);
    }

    #[test]
    fn head_variables_are_not_merged() {
        let mut i = Interner::new();
        let query = q(&mut i, &["x", "y"], "e(?x,?y)");
        // Partitions of {x, y} without merging heads: only the discrete one.
        assert_eq!(quotients(&query).len(), 1);
    }

    #[test]
    fn every_quotient_is_contained_in_q() {
        let mut i = Interner::new();
        let query = q(&mut i, &["a"], "e(?a,?b) e(?b,?c) e(?c,?d)");
        for quot in quotients(&query) {
            assert!(
                contained_in(&quot, &query, &mut i),
                "quotient must be contained in the original"
            );
        }
    }

    #[test]
    fn merging_collapses_atoms() {
        let mut i = Interner::new();
        let query = q(&mut i, &[], "e(?a,?b) e(?b,?c)");
        let merged = quotients(&query)
            .into_iter()
            .find(|qt| qt.variables().len() == 1)
            .expect("total merge exists");
        assert_eq!(merged.body().len(), 1); // e(a,a)
    }

    #[test]
    fn head_class_representative_is_head_var() {
        let mut i = Interner::new();
        let query = q(&mut i, &["x"], "e(?x,?y)");
        let quots = quotients(&query);
        // Partition {x,y}: representative must be x, giving e(x,x).
        let collapsed = quots
            .iter()
            .find(|qt| qt.variables().len() == 1)
            .expect("exists");
        let x = i.var("x");
        assert_eq!(collapsed.head(), &[x]);
        assert_eq!(collapsed.variables().into_iter().next(), Some(x));
    }

    #[test]
    fn substitution_preserves_constants() {
        let mut i = Interner::new();
        let query = q(&mut i, &[], "e(?a, k) e(?b, k)");
        let quots = quotients(&query);
        // Merging a and b yields a single atom e(a,k).
        assert!(quots.iter().any(|qt| qt.body().len() == 1));
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn refuses_huge_queries() {
        let mut i = Interner::new();
        let body: String = (0..14)
            .map(|j| format!("e(?v{j},?v{})", j + 1))
            .collect::<Vec<_>>()
            .join(" ");
        let query = q(&mut i, &[], &body);
        let _ = quotients(&query);
    }
}
