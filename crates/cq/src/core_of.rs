//! Cores of conjunctive queries.
//!
//! The *core* of a CQ `q` is a minimal subquery equivalent to `q` — the
//! image of `q` under a minimal endomorphism fixing the head variables. The
//! paper's Section 6 pipeline needs cores because a CQ is equivalent to one
//! in `TW(k)` iff its core is in `TW(k)` (Dalmau–Kolaitis–Vardi, cited as
//! [10]), which makes semantic membership for unions of WDPTs decidable
//! inside the polynomial hierarchy (Theorem 17).
//!
//! The computation is the classical iterated retraction: find an
//! endomorphism (a homomorphism from `q` into its own canonical database,
//! fixing the head) whose image has fewer atoms or variables, replace `q`
//! with the image, repeat. Worst-case exponential — cores are NP-hard to
//! recognize — but fast for the query sizes of the paper's constructions.

use crate::backtrack::try_extend_all;
use crate::containment::freeze;
use crate::query::ConjunctiveQuery;
use std::collections::{BTreeMap, BTreeSet};
use wdpt_model::{Atom, CancelToken, Cancelled, Const, Interner, Mapping, Term, Var};

/// Applies an endomorphism (expressed as variable → frozen-constant mapping
/// plus the unfreeze table) to the body, yielding the image subquery.
fn image_of(body: &[Atom], hom: &Mapping, unfreeze: &BTreeMap<Const, Var>) -> Vec<Atom> {
    let mut out: BTreeSet<Atom> = BTreeSet::new();
    for atom in body {
        let args = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Const(c) => Term::Const(*c),
                Term::Var(v) => {
                    let c = hom.get(*v).expect("endomorphism is total on variables");
                    match unfreeze.get(&c) {
                        Some(&w) => Term::Var(w),
                        None => Term::Const(c), // maps onto an original constant
                    }
                }
            })
            .collect();
        out.insert(Atom::new(atom.pred, args));
    }
    out.into_iter().collect()
}

/// Computes the core of `q` (head variables are fixed pointwise). The result
/// is equivalent to `q` and has no proper retract.
pub fn core_of(q: &ConjunctiveQuery, interner: &mut Interner) -> ConjunctiveQuery {
    try_core_of(q, interner, CancelToken::never()).expect("the never token cannot cancel")
}

/// [`core_of`] with cooperative cancellation: the endomorphism enumeration
/// is worst-case exponential in the query size (e.g. the n-fold cross
/// product of one atom has `nⁿ` endomorphisms), so callers planning
/// untrusted queries under a deadline thread their token through here too.
pub fn try_core_of(
    q: &ConjunctiveQuery,
    interner: &mut Interner,
    token: &CancelToken,
) -> Result<ConjunctiveQuery, Cancelled> {
    let mut current = q.clone();
    loop {
        let (db, table) = freeze(&current, interner);
        let unfreeze: BTreeMap<Const, Var> = table.iter().map(|(&v, &c)| (c, v)).collect();
        let seed = Mapping::from_pairs(current.head().iter().map(|&x| (x, table[&x])));
        let endos = try_extend_all(&db, current.body(), &seed, token)?;
        let n_atoms = current.body().len();
        let n_vars = current.variables().len();
        // Pick the endomorphism with the smallest image, if any shrinks it.
        let best = endos
            .iter()
            .map(|h| {
                let img = image_of(current.body(), h, &unfreeze);
                let vars: BTreeSet<Var> = img.iter().flat_map(|a| a.vars()).collect();
                (img.len(), vars.len(), img)
            })
            .filter(|(na, nv, _)| *na < n_atoms || *nv < n_vars)
            .min_by_key(|(na, nv, _)| (*na, *nv));
        match best {
            Some((_, _, img)) => {
                current = ConjunctiveQuery::new(current.head().to_vec(), img);
            }
            None => return Ok(current),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::equivalent;
    use wdpt_model::parse::parse_atoms;

    fn q(i: &mut Interner, head: &[&str], body: &str) -> ConjunctiveQuery {
        let atoms = parse_atoms(i, body).unwrap();
        let head = head.iter().map(|n| i.var(n)).collect();
        ConjunctiveQuery::new(head, atoms)
    }

    #[test]
    fn redundant_path_atom_is_folded() {
        let mut i = Interner::new();
        // e(x,y) ∧ e(x,y') folds to e(x,y).
        let query = q(&mut i, &["x"], "e(?x,?y) e(?x,?y2)");
        let core = core_of(&query, &mut i);
        assert_eq!(core.body().len(), 1);
        assert!(equivalent(&query, &core, &mut i));
    }

    #[test]
    fn triangle_is_its_own_core() {
        let mut i = Interner::new();
        let query = q(&mut i, &[], "e(?x,?y) e(?y,?z) e(?z,?x)");
        let core = core_of(&query, &mut i);
        assert_eq!(core.body().len(), 3);
    }

    #[test]
    fn path_folds_into_edge_with_loop_absent() {
        let mut i = Interner::new();
        // Boolean 2-path has core = single edge? No: a 2-path e(a,b),e(b,c)
        // retracts onto an edge only if some vertex can double, i.e. map
        // a↦b? That needs e(b,b). Not present: the 2-path IS a core.
        let query = q(&mut i, &[], "e(?a,?b) e(?b,?c)");
        let core = core_of(&query, &mut i);
        assert_eq!(core.body().len(), 2);
    }

    #[test]
    fn cycle_with_chord_image() {
        let mut i = Interner::new();
        // Even cycle (length 4) Boolean query folds onto a single... no,
        // onto one edge traversed back and forth: C4 → K2 homomorphism
        // exists (bipartite), so the core is e(x,y) ∧ e(y,x)? A 4-cycle
        // x→y→z→w→x maps onto the 2-cycle a→b→a. The 2-cycle is a subquery
        // image only if the original contains one... it does not, so the
        // core maps within its own variables: h(x)=x, h(y)=y, h(z)=x,
        // h(w)=y needs edges e(x,y),e(y,x). Directed C4 has e(x,y),e(y,z),
        // e(z,w),e(w,x): the fold needs e(y,x) which is absent, so C4
        // (directed) is a core.
        let query = q(&mut i, &[], "e(?x,?y) e(?y,?z) e(?z,?w) e(?w,?x)");
        let core = core_of(&query, &mut i);
        assert_eq!(core.body().len(), 4);
    }

    #[test]
    fn undirected_even_cycle_folds() {
        let mut i = Interner::new();
        // Encode an undirected 4-cycle with edges both ways; its core is a
        // single undirected edge (2 atoms).
        let query = q(
            &mut i,
            &[],
            "e(?x,?y) e(?y,?x) e(?y,?z) e(?z,?y) e(?z,?w) e(?w,?z) e(?w,?x) e(?x,?w)",
        );
        let core = core_of(&query, &mut i);
        assert_eq!(core.body().len(), 2);
        assert!(equivalent(&query, &core, &mut i));
    }

    #[test]
    fn head_variables_are_never_folded() {
        let mut i = Interner::new();
        let query = q(&mut i, &["x", "y2"], "e(?x,?y) e(?x,?y2)");
        let core = core_of(&query, &mut i);
        // y2 is free, so the two atoms cannot be merged unless y folds onto
        // y2 — which is allowed (y is existential) giving e(x,y2) only.
        assert!(equivalent(&query, &core, &mut i));
        let y2 = i.var("y2");
        assert!(core.head().contains(&y2));
    }

    #[test]
    fn constants_are_fixed_points() {
        let mut i = Interner::new();
        let query = q(&mut i, &[], "e(?x, a) e(?y, a)");
        let core = core_of(&query, &mut i);
        assert_eq!(core.body().len(), 1);
    }

    #[test]
    fn cancelled_token_aborts_core_computation() {
        let mut i = Interner::new();
        let query = q(&mut i, &[], "e(?a,?b) e(?c,?d) e(?x,?y)");
        let token = CancelToken::new();
        token.cancel();
        assert_eq!(try_core_of(&query, &mut i, &token), Err(Cancelled));
    }

    #[test]
    fn core_is_idempotent() {
        let mut i = Interner::new();
        let query = q(&mut i, &[], "e(?a,?b) e(?b,?c) e(?a2,?b) e(?b,?c2)");
        let once = core_of(&query, &mut i);
        let twice = core_of(&once, &mut i);
        assert_eq!(once, twice);
    }
}
