//! The tractable CQ classes `TW(k)`, `HW(k)`, `HW'(k)` as predicates.

use crate::query::ConjunctiveQuery;
use wdpt_decomp::{
    beta_hypertreewidth_at_most, hypertree_width_at_most, treewidth_at_most, treewidth_exact,
    try_hypertree_width_at_most, try_treewidth_exact_with_order, HypertreeDecomposition,
};
use wdpt_model::{CancelToken, Cancelled};

/// The exact treewidth of the query's hypergraph.
pub fn treewidth_of(q: &ConjunctiveQuery) -> usize {
    let (h, _) = q.hypergraph();
    treewidth_exact(&h)
}

/// [`treewidth_of`] with cooperative cancellation of the `O(2ⁿ)` subset
/// DP — for callers planning untrusted queries under a deadline.
pub fn try_treewidth_of(q: &ConjunctiveQuery, token: &CancelToken) -> Result<usize, Cancelled> {
    let (h, _) = q.hypergraph();
    try_treewidth_exact_with_order(&h, token).map(|(tw, _)| tw)
}

/// `q ∈ TW(k)` — treewidth at most `k` (Section 3.1).
pub fn in_tw(q: &ConjunctiveQuery, k: usize) -> bool {
    let (h, _) = q.hypergraph();
    treewidth_at_most(&h, k).is_some()
}

/// `q ∈ HW(k)` — (generalized) hypertreewidth at most `k` (Section 3.1).
pub fn in_hw(q: &ConjunctiveQuery, k: usize) -> bool {
    hypertreewidth_at_most_cq(q, k).is_some()
}

/// [`in_hw`] with cooperative cancellation of the cover search.
pub fn try_in_hw(q: &ConjunctiveQuery, k: usize, token: &CancelToken) -> Result<bool, Cancelled> {
    let (h, _) = q.hypergraph();
    try_hypertree_width_at_most(&h, k, token).map(|d| d.is_some())
}

/// Witness decomposition for `q ∈ HW(k)`, if any.
pub fn hypertreewidth_at_most_cq(q: &ConjunctiveQuery, k: usize) -> Option<HypertreeDecomposition> {
    let (h, _) = q.hypergraph();
    hypertree_width_at_most(&h, k)
}

/// `q ∈ HW'(k)` — every subquery has hypertreewidth at most `k`
/// (β-hypertreewidth, Section 5). `HW'(1)` is β-acyclicity.
pub fn in_hw_prime(q: &ConjunctiveQuery, k: usize) -> bool {
    let (h, _) = q.hypergraph();
    beta_hypertreewidth_at_most(&h, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdpt_model::parse::parse_atoms;
    use wdpt_model::Interner;

    fn q(i: &mut Interner, body: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(parse_atoms(i, body).unwrap())
    }

    #[test]
    fn example4_path_is_tw1() {
        let mut i = Interner::new();
        // Example 4 of the paper: a path CQ is in TW(1).
        let path = q(&mut i, "e(?x1,?x2) e(?x2,?x3) e(?x3,?x4)");
        assert_eq!(treewidth_of(&path), 1);
        assert!(in_tw(&path, 1));
    }

    #[test]
    fn example4_cycle_is_tw2() {
        let mut i = Interner::new();
        let cyc = q(&mut i, "e(?x1,?x2) e(?x2,?x3) e(?x3,?x4) e(?x4,?x1)");
        assert_eq!(treewidth_of(&cyc), 2);
        assert!(!in_tw(&cyc, 1));
        assert!(in_tw(&cyc, 2));
    }

    #[test]
    fn example4_clique_is_tw_n_minus_1() {
        let mut i = Interner::new();
        let mut body = String::new();
        for a in 1..=4 {
            for b in 1..=4 {
                if a != b {
                    body.push_str(&format!("e(?x{a},?x{b}) "));
                }
            }
        }
        let clique = q(&mut i, &body);
        assert_eq!(treewidth_of(&clique), 3);
    }

    #[test]
    fn example5_is_hw1_but_not_bounded_tw() {
        // θ_n = ⋀ E(x_i,x_j) ∧ T_n(x_1,…,x_n) is acyclic (HW(1)) while its
        // treewidth is n − 1.
        let mut i = Interner::new();
        let n = 5;
        let mut body = String::new();
        for a in 1..=n {
            for b in a + 1..=n {
                body.push_str(&format!("e(?x{a},?x{b}) "));
            }
        }
        body.push_str(&format!(
            "t({})",
            (1..=n)
                .map(|j| format!("?x{j}"))
                .collect::<Vec<_>>()
                .join(",")
        ));
        let theta = q(&mut i, &body);
        assert!(in_hw(&theta, 1));
        assert_eq!(treewidth_of(&theta), n - 1);
        // And HW'(1) fails: dropping T_n leaves a clique of binary edges.
        assert!(!in_hw_prime(&theta, 1));
    }

    #[test]
    fn tw_k_inside_hw_k_plus_1() {
        // TW(k) ⊆ HW(k+1) (cited as [1] in the paper) — spot-check.
        let mut i = Interner::new();
        let cyc = q(&mut i, "e(?x1,?x2) e(?x2,?x3) e(?x3,?x1)");
        assert!(in_tw(&cyc, 2));
        assert!(in_hw(&cyc, 3));
        assert!(in_hw(&cyc, 2));
    }

    #[test]
    fn beta_width_closed_under_subqueries() {
        let mut i = Interner::new();
        let path = q(&mut i, "e(?a,?b) e(?b,?c)");
        assert!(in_hw_prime(&path, 1));
    }
}
