//! # wdpt-bench — harness utilities for regenerating the paper's tables
//!
//! The binaries `table1`, `table2`, and `figure2` print measured versions
//! of Tables 1–2 and Figure 2 of the paper (see `DESIGN.md` for the
//! experiment index and `EXPERIMENTS.md` for recorded results). This
//! library holds the shared measurement plumbing: wall-clock sampling,
//! growth-shape classification (the paper's "tables" are complexity
//! classes, so the reproducible observable is *how runtimes scale*), and a
//! plain-text table printer.

use std::time::Instant;
use wdpt_obs::{metrics_snapshot, Json, MetricsSnapshot, QueryProfile};

/// One measured series: parameter values and mean runtimes (seconds).
#[derive(Debug, Clone)]
pub struct Series {
    /// Label shown in reports.
    pub label: String,
    /// Swept parameter values.
    pub xs: Vec<f64>,
    /// Mean runtime in seconds per parameter value.
    pub secs: Vec<f64>,
}

impl Series {
    /// One machine-readable object per row: label, sweep points, and the
    /// fitted growth verdict.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::str("series")),
            ("label", Json::str(self.label.clone())),
            (
                "xs",
                Json::Arr(self.xs.iter().map(|&x| Json::num(x)).collect()),
            ),
            (
                "secs",
                Json::Arr(self.secs.iter().map(|&t| Json::num(t)).collect()),
            ),
            ("growth", Json::str(classify(self).to_string())),
        ])
    }
}

/// Output sink shared by the table binaries: human-readable blocks by
/// default, or — under `--json` — exactly one JSON object per emitted row on
/// stdout, with all prose suppressed so the stream stays parseable
/// line-by-line (the contract `json_check` validates in CI).
pub struct Report {
    json: bool,
}

impl Report {
    /// `json = true` switches every emit to one-JSON-object-per-line.
    pub fn new(json: bool) -> Report {
        Report { json }
    }

    /// Whether this report emits JSON lines.
    pub fn is_json(&self) -> bool {
        self.json
    }

    /// A section header (prose; suppressed in JSON mode).
    pub fn section(&self, title: &str) {
        if !self.json {
            section(title);
        }
    }

    /// A free-form commentary line (prose; suppressed in JSON mode).
    pub fn note(&self, text: &str) {
        if !self.json {
            println!("{text}");
        }
    }

    /// Emits one JSON line via the shared `wdpt_obs::json` framing helper —
    /// the same writer the `wdpt-serve` wire protocol uses, so `json_check`
    /// validates both streams against one implementation.
    fn emit(&self, value: &Json) {
        let stdout = std::io::stdout();
        wdpt_obs::write_json_line(&mut stdout.lock(), value).expect("stdout is writable");
    }

    /// One measured series: a rendered block, or one `kind:"series"` line.
    pub fn series(&self, s: &Series) {
        if self.json {
            self.emit(&s.to_json());
        } else {
            print!("{}", render(s));
        }
    }

    /// A per-query profile: the EXPLAIN-style text, or one `kind:"profile"`
    /// line wrapping [`QueryProfile::to_json`].
    pub fn profile(&self, profile: &QueryProfile) {
        if self.json {
            self.emit(&Json::obj([
                ("kind", Json::str("profile")),
                ("profile", profile.to_json()),
            ]));
        } else {
            print!("{}", profile.render());
        }
    }

    /// Engine-counter totals over a sweep: a summary line, or one
    /// `kind:"counters"` line.
    pub fn counters(&self, context: &str, delta: &MetricsSnapshot) {
        if self.json {
            self.emit(&Json::obj([
                ("kind", Json::str("counters")),
                ("context", Json::str(context)),
                (
                    "counters",
                    Json::obj(
                        delta
                            .counters
                            .iter()
                            .filter(|(_, v)| *v > 0)
                            .map(|(n, v)| (n.clone(), Json::int(*v))),
                    ),
                ),
            ]));
        } else {
            let body: Vec<String> = delta
                .counters
                .iter()
                .filter(|(_, v)| *v > 0)
                .map(|(n, v)| format!("{n}={v}"))
                .collect();
            println!("  engine counters over {context}: {}", body.join(" "));
        }
    }
}

/// Fitted growth shape of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Growth {
    /// Runtime ≈ c·xᵈ — reported with the fitted degree.
    Polynomial(f64),
    /// Runtime ≈ c·bˣ — reported with the fitted base.
    Exponential(f64),
    /// Too little signal (e.g. all runtimes tiny or non-monotone).
    Flat,
}

impl std::fmt::Display for Growth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Growth::Polynomial(d) => write!(f, "poly(deg≈{d:.1})"),
            Growth::Exponential(b) => write!(f, "exp(base≈{b:.2})"),
            Growth::Flat => write!(f, "flat"),
        }
    }
}

/// Least-squares slope of `y` against `x`.
fn slope(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    if var == 0.0 {
        0.0
    } else {
        cov / var
    }
}

/// Classifies a series as polynomial or exponential by comparing the fit
/// quality of `log t` against `log x` (power law) versus `log t` against
/// `x` (exponential).
pub fn classify(series: &Series) -> Growth {
    let pts: Vec<(f64, f64)> = series
        .xs
        .iter()
        .zip(&series.secs)
        .filter(|&(&x, &t)| x > 0.0 && t > 1e-7)
        .map(|(&x, &t)| (x, t))
        .collect();
    if pts.len() < 3 {
        return Growth::Flat;
    }
    let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
    let lts: Vec<f64> = pts.iter().map(|p| p.1.ln()).collect();
    let lxs: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let r2 = |px: &[f64], py: &[f64]| -> f64 {
        let s = slope(px, py);
        let n = px.len() as f64;
        let mx = px.iter().sum::<f64>() / n;
        let my = py.iter().sum::<f64>() / n;
        let ss_res: f64 = px
            .iter()
            .zip(py)
            .map(|(x, y)| {
                let pred = my + s * (x - mx);
                (y - pred) * (y - pred)
            })
            .sum();
        let ss_tot: f64 = py.iter().map(|y| (y - my) * (y - my)).sum();
        if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        }
    };
    let total_growth = pts.last().unwrap().1 / pts.first().unwrap().1;
    if total_growth < 4.0 {
        return Growth::Flat;
    }
    let r2_poly = r2(&lxs, &lts);
    let r2_exp = r2(&xs, &lts);
    let deg = slope(&lxs, &lts);
    let base = slope(&xs, &lts).exp();
    // Prefer the model that explains the data better; a power-law fit with
    // a huge degree is exponential in disguise, and an "exponential" with
    // base ≈ 1 is polynomial in disguise.
    if (r2_exp > r2_poly || deg > 6.0) && base >= 1.25 {
        Growth::Exponential(base)
    } else {
        Growth::Polynomial(deg)
    }
}

/// Measures `f` at each parameter value, repeating until `min_runtime`
/// seconds per point (at least once), and returns the mean-time series.
pub fn measure<F: FnMut(usize)>(
    label: &str,
    params: &[usize],
    min_runtime: f64,
    mut f: F,
) -> Series {
    let mut xs = Vec::with_capacity(params.len());
    let mut secs = Vec::with_capacity(params.len());
    for &p in params {
        // Untimed warmup: populates lazy indexes and caches.
        f(p);
        let mut iters = 0u32;
        let start = Instant::now();
        loop {
            f(p);
            iters += 1;
            if start.elapsed().as_secs_f64() >= min_runtime || iters >= 1000 {
                break;
            }
        }
        xs.push(p as f64);
        secs.push(start.elapsed().as_secs_f64() / f64::from(iters));
    }
    Series {
        label: label.to_owned(),
        xs,
        secs,
    }
}

/// Renders a series as a fixed-width table block with its growth verdict.
pub fn render(series: &Series) -> String {
    let mut out = String::new();
    out.push_str(&format!("  {}\n", series.label));
    out.push_str("      n        time\n");
    for (x, t) in series.xs.iter().zip(&series.secs) {
        out.push_str(&format!("  {x:7.0}  {}\n", human_time(*t)));
    }
    out.push_str(&format!("    shape: {}\n", classify(series)));
    out
}

/// Human-readable duration.
pub fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:8.1}ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:8.1}µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:8.2}ms", secs * 1e3)
    } else {
        format!("{secs:8.2}s ")
    }
}

/// Prints a section header used by the table binaries.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Minimum measured wall-clock per bench case, in seconds; override with
/// the `BENCH_MIN_RUNTIME` environment variable.
fn bench_min_runtime() -> f64 {
    std::env::var("BENCH_MIN_RUNTIME")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05)
}

/// Runs `f` repeatedly (after one untimed warmup that populates lazy
/// indexes) for at least [`bench_min_runtime`] seconds and prints one
/// `name  mean-time  (iters)` line. The std-only runner behind the
/// `[[bench]]` targets (`harness = false`).
pub fn bench_case<F: FnMut()>(name: &str, f: F) {
    let (mean, iters, _) = run_case(f);
    println!("  {name:<48} {} ({iters} iters)", human_time(mean));
}

/// Like [`bench_case`], but also prints the per-iteration engine-counter
/// deltas (from the [`wdpt_obs`] metrics registry) averaged over the
/// measured iterations — this is how the ablation benchmarks show *why* a
/// configuration is slow (index rebuilds, tuples scanned, nodes expanded),
/// not just that it is.
pub fn bench_case_with_stats<F: FnMut()>(name: &str, f: F) {
    let (mean, iters, delta) = run_case(f);
    let per = |metric: &str| delta.counter(metric) / u64::from(iters);
    println!(
        "  {name:<48} {} ({iters} iters)  [builds={} probes={} scanned={} nodes={} tasks={} per iter]",
        human_time(mean),
        per(wdpt_model::stats::INDEX_BUILDS),
        per(wdpt_model::stats::INDEX_PROBES),
        per(wdpt_model::stats::TUPLES_SCANNED),
        per(wdpt_model::stats::NODES_EXPANDED),
        per(wdpt_model::stats::PARALLEL_TASKS),
    );
}

fn run_case<F: FnMut()>(mut f: F) -> (f64, u32, MetricsSnapshot) {
    let min = bench_min_runtime();
    f(); // warmup
    let before = metrics_snapshot();
    let start = Instant::now();
    let mut iters = 0u32;
    loop {
        f();
        iters += 1;
        if start.elapsed().as_secs_f64() >= min || iters >= 100_000 {
            break;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let delta = metrics_snapshot().since(&before);
    (elapsed / f64::from(iters), iters, delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(xs: Vec<f64>, secs: Vec<f64>) -> Series {
        Series {
            label: "test".into(),
            xs,
            secs,
        }
    }

    #[test]
    fn classifies_quadratic_as_polynomial() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let secs: Vec<f64> = xs.iter().map(|x| 1e-3 * x * x).collect();
        match classify(&series(xs, secs)) {
            Growth::Polynomial(d) => assert!((d - 2.0).abs() < 0.2, "degree {d}"),
            other => panic!("expected polynomial, got {other}"),
        }
    }

    #[test]
    fn classifies_doubling_as_exponential() {
        let xs: Vec<f64> = (1..=12).map(|i| i as f64).collect();
        let secs: Vec<f64> = xs.iter().map(|x| 1e-5 * 2f64.powf(*x)).collect();
        match classify(&series(xs, secs)) {
            Growth::Exponential(b) => assert!((b - 2.0).abs() < 0.2, "base {b}"),
            other => panic!("expected exponential, got {other}"),
        }
    }

    #[test]
    fn classifies_noise_as_flat() {
        let xs: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        let secs = vec![1e-6; 8];
        assert_eq!(classify(&series(xs, secs)), Growth::Flat);
    }

    #[test]
    fn measure_returns_one_point_per_param() {
        let s = measure("noop", &[1, 2, 3], 0.0, |_| {});
        assert_eq!(s.xs.len(), 3);
        assert!(s.secs.iter().all(|&t| t >= 0.0));
    }

    #[test]
    fn human_time_units() {
        assert!(human_time(5e-9).contains("ns"));
        assert!(human_time(5e-6).contains("µs"));
        assert!(human_time(5e-3).contains("ms"));
        assert!(human_time(5.0).contains('s'));
    }

    #[test]
    fn series_json_is_parseable_and_complete() {
        let s = series(vec![1.0, 2.0, 3.0], vec![1e-6, 2e-6, 3e-6]);
        let line = s.to_json().to_string();
        let parsed = wdpt_obs::Json::parse(&line).expect("valid JSON");
        assert_eq!(parsed.get("kind").unwrap().as_str(), Some("series"));
        assert_eq!(parsed.get("label").unwrap().as_str(), Some("test"));
        assert_eq!(parsed.get("xs").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(parsed.get("secs").unwrap().as_arr().unwrap().len(), 3);
        assert!(parsed.get("growth").unwrap().as_str().is_some());
    }

    #[test]
    fn render_contains_label_and_shape() {
        let s = series(vec![1.0, 2.0, 3.0], vec![1e-6, 1e-6, 1e-6]);
        let r = render(&s);
        assert!(r.contains("test"));
        assert!(r.contains("shape"));
    }
}
