//! Regenerates **Table 1** of the paper as measured scaling experiments
//! (experiments E2–E5, E10 of `DESIGN.md`).
//!
//! Table 1 is a complexity table; its reproducible observable is the
//! *shape* of each cell: the algorithms available to the restricted classes
//! scale polynomially, and the hard cells admit instance families on which
//! the general algorithms blow up exponentially. Every row below prints
//! measured series plus a fitted growth verdict.
//!
//! Usage:
//! `table1 [--row eval|partial|max|subsumption|parallel|classes] [--quick] [--threads N] [--json]`
//!
//! The `parallel` row compares the sequential evaluator with the
//! `std::thread::scope` fan-out (`--threads 0` auto-detects), prints the
//! engine-counter deltas alongside wall-clock, and finishes with an
//! EXPLAIN-style [`wdpt_core::evaluate_parallel_profiled`] profile of one
//! representative run. With `--json`, all prose is suppressed and every row
//! becomes one machine-readable JSON object on stdout.

use wdpt_bench::{measure, Report, Series};
use wdpt_core::{
    eval_bounded_interface, eval_decide, evaluate_parallel, has_bounded_interface, interface_width,
    is_globally_in, is_locally_in, max_eval_decide, partial_eval_decide, subsumed, Engine,
    WidthKind,
};
use wdpt_gen::db::{random_graph_db, random_undirected_graph, rng};
use wdpt_gen::music::{music_catalog, MusicParams};
use wdpt_gen::reductions::{qbf_instance, three_col_instance, QbfLit};
use wdpt_gen::trees::{
    chain_wdpt, clique_chain_wdpt, clique_pattern_wdpt, random_wdpt, star_wdpt, wide_interface_wdpt,
};
use wdpt_model::{Interner, Mapping};

struct Config {
    row: Option<String>,
    min_runtime: f64,
    scale: usize,
    threads: usize,
    json: bool,
}

impl Config {
    fn report(&self) -> Report {
        Report::new(self.json)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut row = None;
    let mut quick = false;
    let mut threads = 0usize; // 0 = available_parallelism
    let mut json = false;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--row" => row = it.next().cloned(),
            "--quick" => quick = true,
            "--json" => json = true,
            "--threads" => {
                threads = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads expects a number");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let cfg = Config {
        row,
        min_runtime: if quick { 0.005 } else { 0.05 },
        scale: if quick { 0 } else { 1 },
        threads,
        json,
    };
    let r = cfg.report();
    r.note("Table 1 reproduction — complexity of WDPT evaluation and query analysis");
    r.note("(paper: Barceló & Pichler, PODS'15; see DESIGN.md experiments E2–E5, E10)");
    let want = |name: &str| cfg.row.as_deref().is_none_or(|r| r == name);
    if want("eval") {
        row_eval(&cfg);
    }
    if want("partial") {
        row_partial(&cfg);
    }
    if want("max") {
        row_max(&cfg);
    }
    if want("subsumption") {
        row_subsumption(&cfg);
    }
    if want("parallel") {
        row_parallel(&cfg);
    }
    if want("classes") {
        row_classes(&cfg);
    }
}

/// Row EVAL: Σ₂ᵖ/NP-hard for general, ℓ-C(k), g-C(k); LogCFL for
/// ℓ-C(k) ∩ BI(c) (Theorems 1, 5, 7; Proposition 3).
fn row_eval(cfg: &Config) {
    let r = cfg.report();
    r.section("EVAL  | general & ℓ-TW(1) & g-TW(1): NP-hard (Prop. 3 reduction)");
    let ns: Vec<usize> = (4..=9 + cfg.scale * 2).collect();
    let s = measure(
        "eval_decide on 3-colorability instances (x = graph vertices)",
        &ns,
        cfg.min_runtime,
        |n| {
            let mut i = Interner::new();
            let edges = random_undirected_graph(n, (5.0 / n as f64).min(0.95), 7 + n as u64);
            let inst = three_col_instance(&mut i, n, &edges);
            std::hint::black_box(eval_decide(&inst.wdpt, &inst.db, &inst.candidate));
        },
    );
    r.series(&s);
    verify_reduction_classes(&r);

    r.section("EVAL  | general WDPTs: Σ₂ᵖ (QBF ∃X∀Y reduction, Theorem 1)");
    let nxs: Vec<usize> = (4..=11 + cfg.scale * 2).collect();
    let s = measure(
        "eval_decide on ∃X∀Y-QBF instances (x = existential variables)",
        &nxs,
        cfg.min_runtime,
        |nx| {
            let mut i = Interner::new();
            let mut r = rng(nx as u64 * 31 + 5);
            let clauses: Vec<Vec<QbfLit>> = (0..3 * nx)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            if r.gen_bool(0.7) {
                                QbfLit::X(r.gen_range(0..nx), r.gen_bool(0.5))
                            } else {
                                QbfLit::Y(r.gen_range(0..3), r.gen_bool(0.5))
                            }
                        })
                        .collect()
                })
                .collect();
            let inst = qbf_instance(&mut i, nx, &clauses);
            std::hint::black_box(eval_decide(&inst.wdpt, &inst.db, &inst.candidate));
        },
    );
    r.series(&s);

    r.section("EVAL  | ℓ-TW(1) ∩ BI(1): LogCFL algorithm (Theorem 6)");
    let sizes: Vec<usize> = (4..=40).step_by(4).collect();
    let s = measure(
        "eval_bounded_interface on star trees (x = optional branches, fixed DB)",
        &sizes,
        cfg.min_runtime,
        |n| {
            let mut i = Interner::new();
            let p = star_wdpt(&mut i, n);
            let db = star_db(&mut i, 30);
            let h = star_answer(&mut i, &db, n);
            std::hint::black_box(eval_bounded_interface(&p, &db, &h, Engine::Tw(1)));
        },
    );
    r.series(&s);
    let dbs: Vec<usize> = (20..=200).step_by(20).collect();
    let s = measure(
        "eval_bounded_interface on the Figure-1 query over growing catalogs (x = bands)",
        &dbs,
        cfg.min_runtime,
        |bands| {
            let mut i = Interner::new();
            let db = music_catalog(
                &mut i,
                MusicParams {
                    bands,
                    ..MusicParams::default()
                },
            );
            let p = wdpt_gen::music::figure1_wdpt(&mut i);
            let x = i.var("x");
            let y = i.var("y");
            let h =
                Mapping::from_pairs(vec![(x, i.constant("record0_0")), (y, i.constant("band0"))]);
            std::hint::black_box(eval_bounded_interface(&p, &db, &h, Engine::Tw(1)));
        },
    );
    r.series(&s);
}

/// Row PARTIAL-EVAL: NP-hard under local tractability alone (Prop. 1),
/// LogCFL under global tractability (Theorem 8).
fn row_partial(cfg: &Config) {
    let r = cfg.report();
    r.section("P-EVAL | ℓ-TW(1) without global tractability: NP-hard (clique chains)");
    let ms: Vec<usize> = (3..=6 + cfg.scale).collect();
    let s = measure(
        "partial_eval (backtracking) on clique-chain trees (x = clique size)",
        &ms,
        cfg.min_runtime,
        |m| {
            let mut i = Interner::new();
            // m+1 variables form the clique; the Turán database has no
            // clique beyond size m, so the search must exhaust.
            let p = clique_chain_wdpt(&mut i, m);
            let db = turan_db(&mut i, m, 2);
            let w = i.var("w");
            let h = Mapping::from_pairs(vec![(w, i.constant("c0"))]);
            std::hint::black_box(partial_eval_decide(&p, &db, &h, Engine::Backtrack));
        },
    );
    r.series(&s);

    r.section("P-EVAL | g-TW(1): LogCFL algorithm (Theorem 8)");
    let depths: Vec<usize> = (4..=40).step_by(4).collect();
    let s = measure(
        "partial_eval (TW engine) on chain trees (x = tree depth)",
        &depths,
        cfg.min_runtime,
        |d| {
            let mut i = Interner::new();
            let p = chain_wdpt(&mut i, d, Some(d / 2));
            let (db, _) = random_graph_db(&mut i, 40, 120, 11);
            let y0 = i.var("y0");
            let h = Mapping::from_pairs(vec![(y0, i.constant("c0"))]);
            std::hint::black_box(partial_eval_decide(&p, &db, &h, Engine::Tw(1)));
        },
    );
    r.series(&s);
}

/// Row MAX-EVAL: DP-hard under local tractability (Prop. 4), LogCFL under
/// global tractability (Theorem 9).
fn row_max(cfg: &Config) {
    let r = cfg.report();
    r.section("M-EVAL | ℓ-TW(1) without global tractability: DP-hard (clique chains)");
    let ms: Vec<usize> = (3..=6 + cfg.scale).collect();
    let s = measure(
        "max_eval (backtracking) on clique-chain trees (x = clique size)",
        &ms,
        cfg.min_runtime,
        |m| {
            let mut i = Interner::new();
            let p = clique_chain_wdpt(&mut i, m);
            let db = turan_db(&mut i, m, 2);
            let w = i.var("w");
            let h = Mapping::from_pairs(vec![(w, i.constant("c0"))]);
            std::hint::black_box(max_eval_decide(&p, &db, &h, Engine::Backtrack));
        },
    );
    r.series(&s);

    r.section("M-EVAL | g-TW(1): LogCFL algorithm (Theorem 9)");
    let sizes: Vec<usize> = (4..=28).step_by(3).collect();
    let s = measure(
        "max_eval (TW engine) on star trees over the music catalog (x = branches)",
        &sizes,
        cfg.min_runtime,
        |n| {
            let mut i = Interner::new();
            let p = star_wdpt(&mut i, n);
            let db = star_db(&mut i, 40);
            let h = star_answer(&mut i, &db, n);
            std::hint::black_box(max_eval_decide(&p, &db, &h, Engine::Tw(1)));
        },
    );
    r.series(&s);
}

/// Rows ⊑ and ≡ₛ: Π₂ᵖ in general, coNP when the right-hand side is
/// globally tractable (Theorems 11, 12).
fn row_subsumption(cfg: &Config) {
    let r = cfg.report();
    r.section("⊑ / ≡ₛ | outer co-nondeterminism: exponential in |p₁| (rooted subtrees)");
    let ns: Vec<usize> = (2..=11 + cfg.scale).collect();
    let s = measure(
        "subsumed(star_n ⊑ star_n) with TW-engine inner checks (x = branches)",
        &ns,
        cfg.min_runtime,
        |n| {
            let mut i = Interner::new();
            let p1 = star_wdpt(&mut i, n);
            let p2 = star_wdpt(&mut i, n);
            std::hint::black_box(subsumed(&p1, &p2, Engine::Tw(1), &mut i));
        },
    );
    r.series(&s);

    r.section("⊑      | inner check, arbitrary right side: NP-hard (clique ⊑ graph)");
    let ms: Vec<usize> = (3..=5 + cfg.scale).collect();
    let s = measure(
        "subsumed(random-graph-pattern ⊑ clique-pattern), backtracking (x = clique size)",
        &ms,
        cfg.min_runtime,
        |m| {
            let mut i = Interner::new();
            // Left: a Turán pattern (complete (m-1)-partite, K_m-free).
            // Right: the K_m clique pattern. The inner hom check must
            // exhaust exponentially many partial cliques.
            let p1 = turan_pattern_wdpt(&mut i, m - 1, 3);
            let p2 = clique_pattern_wdpt(&mut i, m);
            std::hint::black_box(subsumed(&p1, &p2, Engine::Backtrack, &mut i));
        },
    );
    r.series(&s);

    r.section("⊑      | inner check, g-TW(1) right side: coNP algorithm (Theorem 11)");
    let ds: Vec<usize> = (4..=40).step_by(4).collect();
    let s = measure(
        "subsumed(chain_d ⊑ chain_d) with TW-engine inner checks (x = depth)",
        &ds,
        cfg.min_runtime,
        |d| {
            let mut i = Interner::new();
            let p1 = chain_wdpt(&mut i, d, Some(2));
            let p2 = chain_wdpt(&mut i, d, Some(2));
            std::hint::black_box(subsumed(&p1, &p2, Engine::Tw(1), &mut i));
        },
    );
    r.series(&s);
    r.note("  (≡ₛ runs both directions of ⊑ and inherits these shapes; Prop. 5 equates it with ≡_max.)");
}

/// Row "parallel": sequential vs thread-parallel enumeration of `p(D)` on
/// the Figure-1 query over growing catalogs, with engine-counter deltas
/// making the fan-out and the index behaviour observable.
fn row_parallel(cfg: &Config) {
    let r = cfg.report();
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        cfg.threads
    };
    r.section(&format!(
        "Parallel | p(D) enumeration: sequential vs {threads} scoped threads (identical answers)"
    ));
    let bands: Vec<usize> = (100..=400 + cfg.scale * 400).step_by(150).collect();
    let s = measure(
        "evaluate (sequential) on the Figure-1 query (x = bands)",
        &bands,
        cfg.min_runtime,
        |bands| {
            let mut i = Interner::new();
            let db = music_catalog(
                &mut i,
                MusicParams {
                    bands,
                    ..MusicParams::default()
                },
            );
            let p = wdpt_gen::music::figure1_wdpt(&mut i);
            std::hint::black_box(wdpt_core::evaluate(&p, &db));
        },
    );
    r.series(&s);
    let before = wdpt_obs::metrics_snapshot();
    let s = measure(
        "evaluate_parallel on the Figure-1 query (x = bands)",
        &bands,
        cfg.min_runtime,
        |bands| {
            let mut i = Interner::new();
            let db = music_catalog(
                &mut i,
                MusicParams {
                    bands,
                    ..MusicParams::default()
                },
            );
            let p = wdpt_gen::music::figure1_wdpt(&mut i);
            std::hint::black_box(evaluate_parallel(&p, &db, threads));
        },
    );
    r.series(&s);
    let delta = wdpt_obs::metrics_snapshot().since(&before);
    r.counters("the parallel sweep", &delta);
    // EXPLAIN-style profile of one representative run at the largest scale:
    // per-node homomorphism tallies, per-phase span times, counters.
    let largest = *bands.last().expect("non-empty sweep");
    let mut i = Interner::new();
    let db = music_catalog(
        &mut i,
        MusicParams {
            bands: largest,
            ..MusicParams::default()
        },
    );
    let p = wdpt_gen::music::figure1_wdpt(&mut i);
    let (_, profile) = wdpt_core::evaluate_parallel_profiled(
        &p,
        &db,
        threads,
        &format!("figure1 evaluate_parallel ({largest} bands, {threads} threads)"),
    );
    r.profile(&profile);
}

/// Row "classes" (E10): Proposition 2's inclusions verified empirically.
fn row_classes(cfg: &Config) {
    let r = cfg.report();
    r.section("Classes | Proposition 2: ℓ-TW(k) ∩ BI(c) ⊆ g-TW(k+2c); g-TW(k) ⊄ BI(c)");
    let mut rand = rng(99);
    let mut verified = 0;
    let total = 60;
    for _ in 0..total {
        let mut i = Interner::new();
        let p = random_wdpt(&mut i, 2 + rand.gen_range(0..6), &mut rand);
        if is_locally_in(&p, WidthKind::Tw, 1) {
            let c = interface_width(&p);
            assert!(has_bounded_interface(&p, c));
            assert!(
                is_globally_in(&p, WidthKind::Tw, 1 + 2 * c),
                "Proposition 2(1) violated!"
            );
            verified += 1;
        }
    }
    r.note(&format!(
        "  Prop. 2(1): verified on {verified}/{total} random locally-tractable trees"
    ));
    for n in [2usize, 4, 6, 8] {
        let mut i = Interner::new();
        let p = wide_interface_wdpt(&mut i, n);
        assert!(is_globally_in(&p, WidthKind::Tw, 1));
        r.note(&format!(
            "  Prop. 2(2): witness with n={n}: g-TW(1) holds, interface width = {} (unbounded)",
            interface_width(&p)
        ));
    }
}

/// Sanity: the Prop. 3 instances really live in the classes the row claims.
fn verify_reduction_classes(r: &Report) {
    let mut i = Interner::new();
    let edges = vec![(0, 1), (1, 2), (0, 2)];
    let inst = three_col_instance(&mut i, 3, &edges);
    assert!(is_locally_in(&inst.wdpt, WidthKind::Tw, 1));
    assert!(is_globally_in(&inst.wdpt, WidthKind::Tw, 1));
    assert!(!has_bounded_interface(&inst.wdpt, 2));
    r.note("  (instances verified: ℓ-TW(1) ✓, g-TW(1) ✓, unbounded interface ✓)");
}

/// A database for the star family: `a(s_j, u_j)` with one `e(u_j, t_j)`
/// edge for even `j` — every optional branch has at most one extension, so
/// answers are unique per root choice and can be written down directly.
fn star_db(i: &mut Interner, m: usize) -> wdpt_model::Database {
    let a = i.pred("a");
    let e = i.pred("e");
    let mut db = wdpt_model::Database::new();
    for j in 0..m {
        let x = i.constant(&format!("s{j}"));
        let u = i.constant(&format!("u{j}"));
        db.insert(a, vec![x, u]);
        if j % 2 == 0 {
            let z = i.constant(&format!("t{j}"));
            db.insert(e, vec![u, z]);
        }
    }
    db
}

/// The answer of the `n`-branch star rooted at `x ↦ s0` over [`star_db`]:
/// `u ↦ u0` is forced and every branch extends uniquely to `t0`.
fn star_answer(i: &mut Interner, _db: &wdpt_model::Database, n: usize) -> Mapping {
    let mut h = Mapping::from_pairs(vec![(i.var("x"), i.constant("s0"))]);
    let t0 = i.constant("t0");
    for j in 0..n {
        h.insert(i.var(&format!("z{j}")), t0);
    }
    h
}

/// A single-node Boolean WDPT whose body is the complete multipartite
/// (Turán) pattern `T(parts, per_part)` over `e/2`.
fn turan_pattern_wdpt(i: &mut Interner, parts: usize, per_part: usize) -> wdpt_core::Wdpt {
    let e = i.pred("e");
    let n = parts * per_part;
    let vs: Vec<_> = (0..n).map(|j| i.var(&format!("tp{j}"))).collect();
    let mut atoms = Vec::new();
    for a in 0..n {
        for b in 0..n {
            if a != b && a % parts != b % parts {
                atoms.push(wdpt_model::Atom::new(e, vec![vs[a].into(), vs[b].into()]));
            }
        }
    }
    wdpt_core::WdptBuilder::new(atoms)
        .build(Vec::new())
        .expect("single node")
}

/// The Turán database `T(parts, per_part)`: a complete multipartite graph
/// with `parts` classes of `per_part` vertices — dense, yet free of any
/// clique larger than `parts`. Searching for a `(parts+1)`-clique in it
/// forces the backtracking engine through exponentially many partial
/// cliques, realizing the NP-hard cells honestly. Also provides
/// `g(v, c0)` facts so the clique-chain's free-variable atom matches.
fn turan_db(i: &mut Interner, parts: usize, per_part: usize) -> wdpt_model::Database {
    let e = i.pred("e");
    let g = i.pred("g");
    let mut db = wdpt_model::Database::new();
    let n = parts * per_part;
    let consts: Vec<_> = (0..n).map(|j| i.constant(&format!("c{j}"))).collect();
    let c0 = consts[0];
    for a in 0..n {
        for b in 0..n {
            if a != b && a % parts != b % parts {
                db.insert(e, vec![consts[a], consts[b]]);
            }
        }
        db.insert(g, vec![consts[a], c0]);
    }
    db
}

#[allow(dead_code)]
fn unused(_: &Series) {}
