//! Regenerates **Figure 2 / Theorem 15** of the paper (experiment E9 of
//! `DESIGN.md`): the exponential blow-up in the size of
//! `WB(k)`-approximations.
//!
//! Prints, for a sweep of `n`, the atom counts of `p₁⁽ⁿ⁾` (`O(n²)`) and
//! `p₂⁽ⁿ⁾` (`Ω(2ⁿ)`), and — on the small prefixes where the Π₂ᵖ check is
//! feasible — verifies the theorem's premises: `p₂ ⊑ p₁`, `p₁ ⋢ p₂`,
//! `p₂ ∈ g-TW(k)`, `p₁ ∉ g-TW(k)`.
//!
//! Usage: `figure2 [--max-n N] [--verify-up-to N] [--json]`
//!
//! With `--json`, prose is suppressed and each size row / verification row
//! becomes one machine-readable JSON object on stdout.

use std::time::Instant;
use wdpt_approx::figure2::{atom_count, figure2_p1, figure2_p2};
use wdpt_bench::Report;
use wdpt_core::{is_globally_in, subsumed, Engine, WidthKind};
use wdpt_model::Interner;
use wdpt_obs::Json;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut max_n = 12usize;
    let mut verify_up_to = 4usize;
    let mut json = false;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--max-n" => max_n = it.next().and_then(|s| s.parse().ok()).unwrap_or(max_n),
            "--verify-up-to" => {
                verify_up_to = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(verify_up_to)
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let k = 2;
    let r = Report::new(json);
    r.note(&format!(
        "Figure 2 / Theorem 15 reproduction — exponential WB(k)-approximation blow-up (k = {k})"
    ));
    r.note("");
    r.note("   n   |p1| atoms   |p2| atoms    |p2|/|p1|   2^n");
    for n in 1..=max_n {
        let mut i = Interner::new();
        let p1 = figure2_p1(&mut i, n, k);
        let p2 = figure2_p2(&mut i, n, k);
        let a1 = atom_count(&p1);
        let a2 = atom_count(&p2);
        if json {
            println!(
                "{}",
                Json::obj([
                    ("kind", Json::str("figure2_size")),
                    ("n", Json::int(n as u64)),
                    ("p1_atoms", Json::int(a1 as u64)),
                    ("p2_atoms", Json::int(a2 as u64)),
                    ("ratio", Json::num(a2 as f64 / a1 as f64)),
                    ("pow2", Json::int(1u64 << n)),
                ])
            );
        } else {
            println!(
                "  {n:3} {a1:10} {a2:12} {:12.2} {:5}",
                a2 as f64 / a1 as f64,
                1u64 << n
            );
        }
    }
    r.note("");
    r.note("Verification on small prefixes (subsumption is Π₂ᵖ — exponential):");
    for n in 1..=verify_up_to {
        let mut i = Interner::new();
        let p1 = figure2_p1(&mut i, n, k);
        let p2 = figure2_p2(&mut i, n, k);
        let start = Instant::now();
        let forward = subsumed(&p2, &p1, Engine::Backtrack, &mut i);
        let backward = subsumed(&p1, &p2, Engine::Backtrack, &mut i);
        let g2 = is_globally_in(&p2, WidthKind::Tw, k);
        let g1 = is_globally_in(&p1, WidthKind::Tw, k);
        if json {
            println!(
                "{}",
                Json::obj([
                    ("kind", Json::str("figure2_verify")),
                    ("n", Json::int(n as u64)),
                    ("p2_subsumed_by_p1", Json::Bool(forward)),
                    ("p1_subsumed_by_p2", Json::Bool(backward)),
                    ("p2_globally_tractable", Json::Bool(g2)),
                    ("p1_globally_tractable", Json::Bool(g1)),
                    ("secs", Json::num(start.elapsed().as_secs_f64())),
                ])
            );
        } else {
            println!(
                "  n={n}: p2 ⊑ p1: {forward}   p1 ⊑ p2: {backward}   p2 ∈ g-TW({k}): {g2}   p1 ∈ g-TW({k}): {g1}   ({:.2?})",
                start.elapsed()
            );
        }
        assert!(
            forward && !backward && g2 && !g1,
            "Theorem 15 premises violated"
        );
    }
    r.note("");
    r.note(
        "Shape check: |p1| grows quadratically, |p2| doubles with every n —\nthe approximation is necessarily exponentially larger (Theorem 15)."
    );
}
