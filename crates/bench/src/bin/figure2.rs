//! Regenerates **Figure 2 / Theorem 15** of the paper (experiment E9 of
//! `DESIGN.md`): the exponential blow-up in the size of
//! `WB(k)`-approximations.
//!
//! Prints, for a sweep of `n`, the atom counts of `p₁⁽ⁿ⁾` (`O(n²)`) and
//! `p₂⁽ⁿ⁾` (`Ω(2ⁿ)`), and — on the small prefixes where the Π₂ᵖ check is
//! feasible — verifies the theorem's premises: `p₂ ⊑ p₁`, `p₁ ⋢ p₂`,
//! `p₂ ∈ g-TW(k)`, `p₁ ∉ g-TW(k)`.
//!
//! Usage: `figure2 [--max-n N] [--verify-up-to N]`

use std::time::Instant;
use wdpt_approx::figure2::{atom_count, figure2_p1, figure2_p2};
use wdpt_core::{is_globally_in, subsumed, Engine, WidthKind};
use wdpt_model::Interner;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut max_n = 12usize;
    let mut verify_up_to = 4usize;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-n" => max_n = it.next().and_then(|s| s.parse().ok()).unwrap_or(max_n),
            "--verify-up-to" => {
                verify_up_to = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(verify_up_to)
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let k = 2;
    println!(
        "Figure 2 / Theorem 15 reproduction — exponential WB(k)-approximation blow-up (k = {k})"
    );
    println!();
    println!("   n   |p1| atoms   |p2| atoms    |p2|/|p1|   2^n");
    for n in 1..=max_n {
        let mut i = Interner::new();
        let p1 = figure2_p1(&mut i, n, k);
        let p2 = figure2_p2(&mut i, n, k);
        let a1 = atom_count(&p1);
        let a2 = atom_count(&p2);
        println!(
            "  {n:3} {a1:10} {a2:12} {:12.2} {:5}",
            a2 as f64 / a1 as f64,
            1u64 << n
        );
    }
    println!();
    println!("Verification on small prefixes (subsumption is Π₂ᵖ — exponential):");
    for n in 1..=verify_up_to {
        let mut i = Interner::new();
        let p1 = figure2_p1(&mut i, n, k);
        let p2 = figure2_p2(&mut i, n, k);
        let start = Instant::now();
        let forward = subsumed(&p2, &p1, Engine::Backtrack, &mut i);
        let backward = subsumed(&p1, &p2, Engine::Backtrack, &mut i);
        let g2 = is_globally_in(&p2, WidthKind::Tw, k);
        let g1 = is_globally_in(&p1, WidthKind::Tw, k);
        println!(
            "  n={n}: p2 ⊑ p1: {forward}   p1 ⊑ p2: {backward}   p2 ∈ g-TW({k}): {g2}   p1 ∈ g-TW({k}): {g1}   ({:.2?})",
            start.elapsed()
        );
        assert!(
            forward && !backward && g2 && !g1,
            "Theorem 15 premises violated"
        );
    }
    println!();
    println!(
        "Shape check: |p1| grows quadratically, |p2| doubles with every n —\nthe approximation is necessarily exponentially larger (Theorem 15)."
    );
}
