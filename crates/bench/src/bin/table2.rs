//! Regenerates **Table 2** of the paper as measured scaling experiments
//! (experiments E6–E8 of `DESIGN.md`).
//!
//! Table 2 contrasts semantic optimization of single WDPTs (huge upper
//! bounds: NEXPTIME^NP membership, coNEXPTIME^NP approximation checking)
//! with unions of WDPTs, where everything collapses into the polynomial
//! hierarchy via the `φ_cq` translation. The measured counterpart:
//!
//! * `WB(k)`-membership / approximation search over the candidate space is
//!   exponential in the tree size;
//! * `UWB(k)`-membership / approximation via cores and quotients scales
//!   polynomially in the number of disjuncts.
//!
//! Usage: `table2 [--row membership|approximation|union] [--quick] [--json]`
//!
//! With `--json`, prose is suppressed and each measured row becomes one
//! machine-readable JSON object on stdout.

use wdpt_approx::uwdpt::{in_m_uwb, uwb_approximation, Uwdpt};
use wdpt_approx::wb::{find_wb_equivalent, wb_approximations};
use wdpt_bench::{measure, Report};
use wdpt_core::{Wdpt, WdptBuilder, WidthKind};
use wdpt_model::{Atom, Interner};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut row = None;
    let mut quick = false;
    let mut json = false;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--row" => row = it.next().cloned(),
            "--quick" => quick = true,
            "--json" => json = true,
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let min_runtime = if quick { 0.002 } else { 0.02 };
    let rep = Report::new(json);
    rep.note("Table 2 reproduction — semantic optimization of WDPTs vs unions of WDPTs");
    rep.note("(paper: Barceló & Pichler, PODS'15; see DESIGN.md experiments E6–E8)");
    let want = |name: &str| row.as_deref().is_none_or(|r| r == name);
    if want("membership") {
        row_membership(min_runtime, &rep);
    }
    if want("approximation") {
        row_approximation(min_runtime, &rep);
    }
    if want("union") {
        row_union(min_runtime, quick, &rep);
    }
}

/// A single-node WDPT whose body is a directed cycle with a chord loop that
/// makes it foldable — semantically in WB(1) but syntactically outside.
/// Parameter `m` = cycle length (number of variables).
fn foldable_cycle(i: &mut Interner, m: usize) -> Wdpt {
    let e = i.pred("e");
    let vs: Vec<_> = (0..m).map(|j| i.var(&format!("q{j}"))).collect();
    let mut atoms: Vec<Atom> = (0..m)
        .map(|j| Atom::new(e, vec![vs[j].into(), vs[(j + 1) % m].into()]))
        .collect();
    // The loop the cycle folds onto.
    let l = i.var("loopvar");
    atoms.push(Atom::new(e, vec![l.into(), l.into()]));
    atoms.push(Atom::new(e, vec![vs[0].into(), l.into()]));
    WdptBuilder::new(atoms)
        .build(Vec::new())
        .expect("single node")
}

/// A single-node WDPT with a genuine directed cycle (its own core).
fn genuine_cycle(i: &mut Interner, m: usize) -> Wdpt {
    let e = i.pred("e");
    let vs: Vec<_> = (0..m).map(|j| i.var(&format!("q{j}"))).collect();
    let atoms: Vec<Atom> = (0..m)
        .map(|j| Atom::new(e, vec![vs[j].into(), vs[(j + 1) % m].into()]))
        .collect();
    WdptBuilder::new(atoms)
        .build(Vec::new())
        .expect("single node")
}

/// Row WB(k)-MEMBERSHIP (Theorem 13, NEXPTIME^NP upper / Π₂ᵖ lower): the
/// candidate search is exponential in the number of variables.
fn row_membership(min_runtime: f64, r: &Report) {
    r.section("WB(1)-Membership | candidate search, exponential in |p| (Theorem 13)");
    let ms: Vec<usize> = (3..=7).collect();
    let s = measure(
        "find_wb_equivalent on foldable cycles (x = cycle length; vars = x+1)",
        &ms,
        min_runtime,
        |m| {
            let mut i = Interner::new();
            let p = foldable_cycle(&mut i, m);
            let found = find_wb_equivalent(&p, WidthKind::Tw, 1, &mut i);
            assert!(found.is_some(), "foldable cycle must be in M(WB(1))");
            std::hint::black_box(found);
        },
    );
    r.series(&s);
}

/// Row WB(k)-APPROXIMATION (Theorem 14 / Proposition 8): computing all
/// pool-maximal approximations is exponential in |p|.
fn row_approximation(min_runtime: f64, r: &Report) {
    r.section("WB(1)-Approximation | candidate search, exponential in |p| (Theorem 14)");
    let ms: Vec<usize> = (3..=6).collect();
    let s = measure(
        "wb_approximations on genuine odd cycles (x = cycle length)",
        &ms,
        min_runtime,
        |m| {
            let mut i = Interner::new();
            let m = if m % 2 == 0 { m + 1 } else { m }; // odd cycles stay cores
            let p = genuine_cycle(&mut i, m);
            let approxs = wb_approximations(&p, WidthKind::Tw, 1, &mut i);
            assert!(!approxs.is_empty());
            std::hint::black_box(approxs);
        },
    );
    r.series(&s);
}

/// Rows UWB(k)-MEMBERSHIP and UWB(k)-APPROXIMATION (Theorems 17–18,
/// Π₂ᵖ/Π₃ᵖ): polynomial in the union size via `φ_cq` + cores + quotients.
fn row_union(min_runtime: f64, quick: bool, r: &Report) {
    r.section("UWB(1)-Membership | polynomial in the union size (Theorem 17)");
    let top = if quick { 24 } else { 48 };
    let sizes: Vec<usize> = (4..=top).step_by(4).collect();
    let s = measure(
        "in_m_uwb on unions of small two-node trees (x = number of disjuncts)",
        &sizes,
        min_runtime,
        |u| {
            let mut i = Interner::new();
            let phi = union_of_small_trees(&mut i, u);
            assert!(in_m_uwb(&phi, WidthKind::Tw, 1, &mut i));
        },
    );
    r.series(&s);

    r.section("UWB(1)-Approximation | polynomial in the union size (Theorem 18)");
    let s = measure(
        "uwb_approximation on unions of triangle CQs (x = number of disjuncts)",
        &sizes,
        min_runtime,
        |u| {
            let mut i = Interner::new();
            let phi = union_of_triangles(&mut i, u);
            let approx = uwb_approximation(&phi, WidthKind::Tw, 1, &mut i);
            std::hint::black_box(approx);
        },
    );
    r.series(&s);
    r.note(
        "  Contrast: the single-WDPT rows above grow exponentially in |p|, while the\n  union rows grow polynomially in the number of disjuncts — Table 2's gap\n  between NEXPTIME^NP/coNEXPTIME^NP and Π₂ᵖ/Π₃ᵖ."
    );
}

/// A union of `u` two-node trees over disjoint predicates.
fn union_of_small_trees(i: &mut Interner, u: usize) -> Uwdpt {
    let disjuncts = (0..u)
        .map(|j| {
            let a = i.pred(&format!("a{j}"));
            let b = i.pred(&format!("b{j}"));
            let x = i.var(&format!("x{j}"));
            let y = i.var(&format!("y{j}"));
            let mut builder = WdptBuilder::new(vec![Atom::new(a, vec![x.into()])]);
            builder.child(0, vec![Atom::new(b, vec![x.into(), y.into()])]);
            builder.build(vec![x, y]).expect("well-designed")
        })
        .collect();
    Uwdpt::new(disjuncts)
}

/// A union of `u` single-node triangle CQs over disjoint predicates.
fn union_of_triangles(i: &mut Interner, u: usize) -> Uwdpt {
    let disjuncts = (0..u)
        .map(|j| {
            let e = i.pred(&format!("e{j}"));
            let (x, y, z) = (
                i.var(&format!("tx{j}")),
                i.var(&format!("ty{j}")),
                i.var(&format!("tz{j}")),
            );
            WdptBuilder::new(vec![
                Atom::new(e, vec![x.into(), y.into()]),
                Atom::new(e, vec![y.into(), z.into()]),
                Atom::new(e, vec![z.into(), x.into()]),
            ])
            .build(Vec::new())
            .expect("single node")
        })
        .collect();
    Uwdpt::new(disjuncts)
}
