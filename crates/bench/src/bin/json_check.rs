//! Validates a stream of JSON lines — the CI smoke check behind the
//! `--json` mode of `table1`/`table2`/`figure2`.
//!
//! Reads stdin, requires every non-empty line to parse as a JSON object,
//! and exits nonzero on any parse failure or if no line was seen at all
//! (an empty stream means the producer silently emitted nothing).
//!
//! Usage: `table1 --row parallel --quick --json | json_check`

use std::io::BufRead;
use wdpt_obs::Json;

fn main() {
    let stdin = std::io::stdin();
    let mut valid = 0usize;
    let mut errors = 0usize;
    for (lineno, line) in stdin.lock().lines().enumerate() {
        let line = line.expect("stdin is readable");
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match Json::parse(trimmed) {
            Ok(Json::Obj(_)) => valid += 1,
            Ok(other) => {
                eprintln!(
                    "json_check: line {}: expected a JSON object, got {other}",
                    lineno + 1
                );
                errors += 1;
            }
            Err(e) => {
                eprintln!("json_check: line {}: {e}", lineno + 1);
                errors += 1;
            }
        }
    }
    if errors > 0 {
        eprintln!("json_check: {errors} invalid line(s), {valid} valid");
        std::process::exit(1);
    }
    if valid == 0 {
        eprintln!("json_check: no JSON lines on stdin");
        std::process::exit(1);
    }
    eprintln!("json_check: {valid} valid JSON object line(s)");
}
