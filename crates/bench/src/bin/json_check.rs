//! Validates a stream of JSON lines — the CI smoke check behind the
//! `--json` mode of `table1`/`table2`/`figure2`.
//!
//! Reads stdin, requires every non-empty line to parse as a JSON object,
//! and exits nonzero on any parse failure or if no line was seen at all
//! (an empty stream means the producer silently emitted nothing).
//!
//! Usage: `table1 --row parallel --quick --json | json_check`

use wdpt_obs::{read_json_line, Json};

fn main() {
    let stdin = std::io::stdin();
    let mut reader = stdin.lock();
    let mut valid = 0usize;
    let mut errors = 0usize;
    // The shared `wdpt_obs::json` line framing: blank lines are skipped,
    // parse failures surface as InvalidData errors.
    loop {
        match read_json_line(&mut reader) {
            Ok(None) => break,
            Ok(Some(Json::Obj(_))) => valid += 1,
            Ok(Some(other)) => {
                eprintln!("json_check: expected a JSON object, got {other}");
                errors += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                eprintln!("json_check: {e}");
                errors += 1;
            }
            Err(e) => {
                eprintln!("json_check: stdin read failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if errors > 0 {
        eprintln!("json_check: {errors} invalid line(s), {valid} valid");
        std::process::exit(1);
    }
    if valid == 0 {
        eprintln!("json_check: no JSON lines on stdin");
        std::process::exit(1);
    }
    eprintln!("json_check: {valid} valid JSON object line(s)");
}
