//! Ablation benchmarks for the engine design choices called out in
//! `DESIGN.md` §2: per-column hash indexes, the dynamic most-constrained
//! atom ordering, and the structured engines versus raw backtracking on
//! instances inside the tractable classes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wdpt_cq::backtrack::{extend_exists_config, BacktrackConfig};
use wdpt_cq::structured::{boolean_eval_structured, StructuredPlan};
use wdpt_cq::ConjunctiveQuery;
use wdpt_gen::db::random_graph_db;
use wdpt_model::{Atom, Interner, Mapping, Var};

fn path_cq(i: &mut Interner, n: usize) -> ConjunctiveQuery {
    let e = i.pred("e");
    let vs: Vec<Var> = (0..=n).map(|j| i.var(&format!("v{j}"))).collect();
    ConjunctiveQuery::boolean(
        vs.windows(2)
            .map(|w| Atom::new(e, vec![w[0].into(), w[1].into()]))
            .collect(),
    )
}

const CONFIGS: [(&str, BacktrackConfig); 3] = [
    (
        "full",
        BacktrackConfig {
            use_index: true,
            dynamic_order: true,
        },
    ),
    (
        "no_index",
        BacktrackConfig {
            use_index: false,
            dynamic_order: true,
        },
    ),
    (
        "static_order",
        BacktrackConfig {
            use_index: true,
            dynamic_order: false,
        },
    ),
];

fn bench_index_and_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/backtracking_features");
    group.sample_size(15);
    for db_edges in [400usize, 1600] {
        let mut i = Interner::new();
        let (db, _) = random_graph_db(&mut i, db_edges / 4, db_edges, 99);
        let q = path_cq(&mut i, 6);
        for (name, config) in CONFIGS {
            group.bench_with_input(
                BenchmarkId::new(name, db_edges),
                &config,
                |b, &config| {
                    b.iter(|| extend_exists_config(&db, q.body(), &Mapping::empty(), config))
                },
            );
        }
    }
    group.finish();
}

fn bench_structured_vs_backtracking_in_class(c: &mut Criterion) {
    // On TW(1) queries both engines are polynomial; this quantifies the
    // constant-factor cost of bag materialization vs raw search.
    let mut group = c.benchmark_group("ablation/structured_overhead_on_tw1");
    group.sample_size(15);
    for n in [4usize, 8, 12] {
        let mut i = Interner::new();
        let (db, _) = random_graph_db(&mut i, 50, 400, 5);
        let q = path_cq(&mut i, n);
        let plan = StructuredPlan::for_query_tw(&q, 1).unwrap();
        group.bench_with_input(BenchmarkId::new("backtrack", n), &q, |b, q| {
            b.iter(|| {
                extend_exists_config(
                    &db,
                    q.body(),
                    &Mapping::empty(),
                    BacktrackConfig::default(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("tw1_structured", n), &q, |b, q| {
            b.iter(|| boolean_eval_structured(q, &db, &plan, &Mapping::empty()))
        });
        group.bench_with_input(BenchmarkId::new("tw1_with_planning", n), &q, |b, q| {
            b.iter(|| {
                let plan = StructuredPlan::for_query_tw(q, 1).unwrap();
                boolean_eval_structured(q, &db, &plan, &Mapping::empty())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_index_and_ordering,
    bench_structured_vs_backtracking_in_class
);
criterion_main!(benches);
