//! Ablation benchmarks for the engine design choices called out in
//! `DESIGN.md` §2: per-column hash indexes, the dynamic most-constrained
//! atom ordering, the structured engines versus raw backtracking on
//! instances inside the tractable classes, and the thread-parallel WDPT
//! evaluator versus the sequential one.
//!
//! Plain `fn main` driven by the std-only runner (`harness = false`).
//! Every case prints the per-iteration engine-counter deltas
//! (`wdpt_model::stats`) so the configurations are compared on *work done*
//! (index builds, tuples scanned, nodes expanded), not just wall-clock.

use wdpt_bench::{bench_case_with_stats, section};
use wdpt_core::evaluate_parallel;
use wdpt_cq::backtrack::{extend_exists_config, BacktrackConfig};
use wdpt_cq::structured::{boolean_eval_structured, StructuredPlan};
use wdpt_cq::ConjunctiveQuery;
use wdpt_gen::db::random_graph_db;
use wdpt_gen::music::{figure1_wdpt, music_catalog, MusicParams};
use wdpt_model::{Atom, Interner, Mapping, Var};

fn path_cq(i: &mut Interner, n: usize) -> ConjunctiveQuery {
    let e = i.pred("e");
    let vs: Vec<Var> = (0..=n).map(|j| i.var(&format!("v{j}"))).collect();
    ConjunctiveQuery::boolean(
        vs.windows(2)
            .map(|w| Atom::new(e, vec![w[0].into(), w[1].into()]))
            .collect(),
    )
}

const CONFIGS: [(&str, BacktrackConfig); 3] = [
    (
        "full",
        BacktrackConfig {
            use_index: true,
            dynamic_order: true,
        },
    ),
    (
        "no_index",
        BacktrackConfig {
            use_index: false,
            dynamic_order: true,
        },
    ),
    (
        "static_order",
        BacktrackConfig {
            use_index: true,
            dynamic_order: false,
        },
    ),
];

fn bench_index_and_ordering() {
    section("ablation/backtracking_features");
    for db_edges in [400usize, 1600] {
        let mut i = Interner::new();
        let (db, _) = random_graph_db(&mut i, db_edges / 4, db_edges, 99);
        let q = path_cq(&mut i, 6);
        for (name, config) in CONFIGS {
            bench_case_with_stats(&format!("{name}/{db_edges}"), || {
                extend_exists_config(&db, q.body(), &Mapping::empty(), config);
            });
        }
    }
}

fn bench_structured_vs_backtracking_in_class() {
    // On TW(1) queries both engines are polynomial; this quantifies the
    // constant-factor cost of bag materialization vs raw search.
    section("ablation/structured_overhead_on_tw1");
    for n in [4usize, 8, 12] {
        let mut i = Interner::new();
        let (db, _) = random_graph_db(&mut i, 50, 400, 5);
        let q = path_cq(&mut i, n);
        let plan = StructuredPlan::for_query_tw(&q, 1).unwrap();
        bench_case_with_stats(&format!("backtrack/{n}"), || {
            extend_exists_config(&db, q.body(), &Mapping::empty(), BacktrackConfig::default());
        });
        bench_case_with_stats(&format!("tw1_structured/{n}"), || {
            boolean_eval_structured(&q, &db, &plan, &Mapping::empty());
        });
        bench_case_with_stats(&format!("tw1_with_planning/{n}"), || {
            let plan = StructuredPlan::for_query_tw(&q, 1).unwrap();
            boolean_eval_structured(&q, &db, &plan, &Mapping::empty());
        });
    }
}

fn bench_parallel_evaluation() {
    // Sequential vs scoped-thread evaluation of the Figure 1 query on a
    // growing music catalog: `parallel_tasks` shows the fan-out.
    section("ablation/parallel_wdpt_evaluation");
    for bands in [100usize, 400] {
        let mut i = Interner::new();
        let db = music_catalog(
            &mut i,
            MusicParams {
                bands,
                ..MusicParams::default()
            },
        );
        let p = figure1_wdpt(&mut i);
        bench_case_with_stats(&format!("sequential/{bands}"), || {
            wdpt_core::evaluate(&p, &db);
        });
        for threads in [2usize, 4, 8] {
            bench_case_with_stats(&format!("parallel{threads}/{bands}"), || {
                evaluate_parallel(&p, &db, threads);
            });
        }
    }
}

fn main() {
    bench_index_and_ordering();
    bench_structured_vs_backtracking_in_class();
    bench_parallel_evaluation();
}
