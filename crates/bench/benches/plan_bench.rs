//! Planner ablation: cost-based static orders vs the seed engine's
//! orderings, on a skewed synthetic catalog.
//!
//! The seed engine had two orderings: the query's own atom order executed
//! one-shot (`dynamic_order: false`), and the per-step most-constrained
//! heuristic. The planner replaces both with a static permutation chosen
//! up front from the statistics catalog. This bench measures what that
//! buys on data where the input order is maximally wrong — a heavy fan-out
//! relation listed first, the 1-row filter last — by comparing *actual*
//! backtracking `nodes_expanded` (the engine counter, not the estimate)
//! across seed input-order, seed dynamic, and the three enumeration
//! strategies, plus the planning latency each strategy pays.
//!
//! Plain `fn main` driven by the std-only runner (`harness = false`).

use std::collections::BTreeSet;
use std::time::Instant;
use wdpt_bench::{bench_case, section};
use wdpt_cq::{try_extend_all, try_extend_all_ordered};
use wdpt_model::parse::{parse_atoms, parse_database};
use wdpt_model::{stats, Atom, CancelToken, Database, Interner, Mapping};
use wdpt_plan::{plan_node, NodeOrder, StatsCatalog, Strategy};

/// A skewed catalog: `small` holds `subjects` rows, `fan` fans each of
/// them out `fanout` ways, and `filter` matches exactly one fan target.
/// The cheap execution starts at `filter`; the query lists `fan` first.
fn skewed_db(i: &mut Interner, subjects: usize, fanout: usize) -> Database {
    let mut spec = String::new();
    for j in 0..subjects {
        spec.push_str(&format!("small(s{j}) "));
    }
    for j in 0..subjects {
        for k in 0..fanout {
            spec.push_str(&format!("fan(s{j},y{k}) "));
        }
    }
    spec.push_str("filter(y0) ");
    parse_database(i, &spec).expect("fixture parses")
}

/// Runs one configuration and returns the `nodes_expanded` delta (the
/// answers are asserted identical across configurations by the caller).
fn measure<F: FnOnce() -> Vec<Mapping>>(f: F) -> (Vec<Mapping>, u64) {
    let before = stats::snapshot();
    let answers = f();
    (answers, stats::snapshot().since(&before).nodes_expanded)
}

fn run_scale(subjects: usize, fanout: usize) {
    let mut i = Interner::new();
    let db = skewed_db(&mut i, subjects, fanout);
    let stats_catalog = StatsCatalog::build(&db);
    // Deliberately worst-first: the fan-out atom leads the input order.
    let atoms: Vec<Atom> = parse_atoms(&mut i, "fan(?x,?y), small(?x), filter(?y)").unwrap();
    let bound0 = BTreeSet::new();
    let seed = Mapping::default();
    let token = CancelToken::new();
    let identity: Vec<usize> = (0..atoms.len()).collect();

    section(&format!(
        "plan/skewed {subjects}x{fanout} ({} facts)",
        db.size()
    ));

    let (baseline, one_shot_nodes) =
        measure(|| try_extend_all_ordered(&db, &atoms, &identity, &seed, &token).unwrap());
    let (dynamic, dynamic_nodes) = measure(|| try_extend_all(&db, &atoms, &seed, &token).unwrap());
    assert_eq!(baseline.len(), dynamic.len());
    println!("  seed input-order        nodes_expanded {one_shot_nodes}");
    println!("  seed dynamic            nodes_expanded {dynamic_nodes}");

    for strategy in [Strategy::Greedy, Strategy::Dp, Strategy::Bushy] {
        let t0 = Instant::now();
        let plan: NodeOrder = plan_node(&stats_catalog, &atoms, &bound0, strategy, &token)
            .expect("planning is not cancelled");
        let plan_us = t0.elapsed().as_secs_f64() * 1e6;
        let (answers, nodes) =
            measure(|| try_extend_all_ordered(&db, &atoms, &plan.order, &seed, &token).unwrap());
        assert_eq!(answers.len(), baseline.len(), "{strategy}: answers differ");
        let speedup = one_shot_nodes as f64 / nodes.max(1) as f64;
        println!(
            "  {strategy:<8} order {:?}  nodes_expanded {nodes} ({speedup:.1}x vs input order, \
             est {:.0}, planned in {plan_us:.0}us)",
            plan.order, plan.est_nodes,
        );
        // The acceptance bar: a DP-family plan must beat the seed
        // one-shot ordering at least 2x on expanded nodes.
        if matches!(strategy, Strategy::Dp | Strategy::Bushy) {
            assert!(
                speedup >= 2.0,
                "{strategy} speedup {speedup:.2}x < 2x on the skewed catalog"
            );
        }
    }

    // Planning latency per strategy (the overhead side of the ledger).
    for strategy in [
        Strategy::Greedy,
        Strategy::Dp,
        Strategy::Bushy,
        Strategy::Auto,
    ] {
        bench_case(&format!("plan_{strategy}"), || {
            let no = plan_node(&stats_catalog, &atoms, &bound0, strategy, &token).unwrap();
            assert_eq!(no.order.len(), atoms.len());
        });
    }
}

fn main() {
    for (subjects, fanout) in [(4usize, 64usize), (8, 512)] {
        run_scale(subjects, fanout);
    }
}
