//! Loader-throughput benchmarks for `wdpt-store`: serial streaming text
//! load vs the parallel bulk loader vs snapshot decode, over the generated
//! music catalog rendered as N-Triples. This is the cold-start story behind
//! `wdpt-serve --snapshot` — the snapshot numbers are the startup cost a
//! server pays instead of a text parse.
//!
//! Plain `fn main` driven by the std-only runner (`harness = false`).

use std::io::Cursor;
use wdpt_bench::{bench_case, section};
use wdpt_gen::music::MusicParams;
use wdpt_model::Interner;
use wdpt_sparql::TripleStore;
use wdpt_store::{
    bulk_load, decode_snapshot, read_text_database, snapshot_to_vec, snapshot_to_vec_v2,
    LoadOptions,
};

/// Renders the music catalog as N-Triples text (same shape the CLI's
/// `gen-music` writes).
fn music_nt(bands: usize, records: usize) -> String {
    let mut i = Interner::new();
    let params = MusicParams {
        bands,
        records_per_band: records,
        ..MusicParams::default()
    };
    let ts = wdpt_gen::music_triples(&mut i, params);
    let triple = TripleStore::pred(&mut i);
    let mut out = String::new();
    if let Some(rel) = ts.database().relation(triple) {
        for t in rel.tuples() {
            for (idx, c) in t.iter().enumerate() {
                if idx > 0 {
                    out.push(' ');
                }
                out.push('<');
                out.push_str(i.name(c.0));
                out.push('>');
            }
            out.push_str(" .\n");
        }
    }
    out
}

fn main() {
    for (bands, records) in [(500usize, 8usize), (2000, 16)] {
        let text = music_nt(bands, records);
        let triples = text.lines().count();
        section(&format!(
            "store/load {bands}x{records} ({triples} triples, {} KiB text)",
            text.len() / 1024
        ));

        bench_case("text_serial", || {
            let mut i = Interner::new();
            let db = read_text_database(&mut i, &mut Cursor::new(text.as_bytes())).unwrap();
            assert_eq!(db.size(), triples);
        });

        // threads=1 runs the full two-pass pipeline on one worker — the
        // honest single-thread baseline for the parallel-interning speedup
        // (text_serial above uses a different, insert-at-a-time code path).
        for threads in [1usize, 2, 4, 8] {
            bench_case(&format!("bulk_parallel_t{threads}"), || {
                let mut i = Interner::new();
                let opts = LoadOptions {
                    threads,
                    ..LoadOptions::default()
                };
                let (db, _) = bulk_load(&mut i, &mut Cursor::new(text.as_bytes()), opts).unwrap();
                assert_eq!(db.size(), triples);
            });
        }

        // Snapshot decode: what `wdpt-serve --snapshot` pays at cold start
        // instead of the text parse (plus it arrives with indexes built).
        let snapshot = {
            let mut i = Interner::new();
            let (db, _) = bulk_load(
                &mut i,
                &mut Cursor::new(text.as_bytes()),
                LoadOptions::default(),
            )
            .unwrap();
            snapshot_to_vec(&i, &db).unwrap()
        };
        section(&format!(
            "store/snapshot {bands}x{records} ({} KiB binary)",
            snapshot.len() / 1024
        ));
        bench_case("snapshot_decode", || {
            let (_, db) = decode_snapshot(&snapshot).unwrap();
            assert_eq!(db.size(), triples);
        });
        bench_case("snapshot_encode", || {
            let (i, db) = decode_snapshot(&snapshot).unwrap();
            let bytes = snapshot_to_vec(&i, &db).unwrap();
            assert_eq!(bytes.len(), snapshot.len());
        });

        // v2 (columnar varint) snapshots: decode is CRC verification plus
        // an allocation-free validation walk — columns stay lazy — so
        // `v2_decode` is the true cold-start cost, and `v2_decode_forced`
        // adds the full materialization for an apples-to-apples comparison
        // with v1's eager decode.
        let snapshot_v2 = {
            let (i, db) = decode_snapshot(&snapshot).unwrap();
            snapshot_to_vec_v2(&i, &db).unwrap()
        };
        section(&format!(
            "store/snapshot-v2 {bands}x{records} ({} KiB binary, {}% of v1)",
            snapshot_v2.len() / 1024,
            snapshot_v2.len() * 100 / snapshot.len()
        ));
        bench_case("v2_decode", || {
            let (_, db) = decode_snapshot(&snapshot_v2).unwrap();
            assert_eq!(db.size(), triples);
        });
        bench_case("v2_decode_forced", || {
            let (_, db) = decode_snapshot(&snapshot_v2).unwrap();
            let mut n = 0usize;
            for (_, rel) in db.relations() {
                rel.build_all_indexes();
                n += rel.tuples().count();
            }
            assert_eq!(n, triples);
        });
        bench_case("v2_encode", || {
            let (i, db) = decode_snapshot(&snapshot).unwrap();
            let bytes = snapshot_to_vec_v2(&i, &db).unwrap();
            assert_eq!(bytes.len(), snapshot_v2.len());
        });
    }

    // Synthetic uniform-universe ingest (the `gen-synth` stream): unlike
    // the music catalog this scales the *symbol* count with the input, so
    // it exercises the two-pass interning pipeline rather than raw text
    // scanning. This is the shape EXPERIMENTS.md's ingest table uses.
    let params = wdpt_gen::SynthParams::sized(200_000);
    let mut text = Vec::new();
    wdpt_gen::write_synth_nt(&mut text, params).unwrap();
    section(&format!(
        "store/ingest synth 200k triples ({} KiB text, ~{} distinct subjects)",
        text.len() / 1024,
        params.subjects
    ));
    for threads in [1usize, 2, 4, 8] {
        bench_case(&format!("bulk_synth_t{threads}"), || {
            let mut i = Interner::new();
            let opts = LoadOptions {
                threads,
                ..LoadOptions::default()
            };
            let (db, report) = bulk_load(&mut i, &mut Cursor::new(&text), opts).unwrap();
            assert!(db.size() > 0 && report.parsed == 200_000);
        });
    }
}
