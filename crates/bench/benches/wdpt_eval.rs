//! Micro-benchmarks for the WDPT evaluation variants (Table 1 cells):
//! EVAL via the general Σ₂ᵖ procedure vs the Theorem 6 algorithm,
//! PARTIAL-EVAL and MAX-EVAL with the structured engines, and the
//! sequential vs thread-parallel enumeration of `p(D)`.
//!
//! Plain `fn main` driven by the std-only [`wdpt_bench::bench_case`]
//! runner (`harness = false`).

use wdpt_bench::{bench_case, section};
use wdpt_core::{
    eval_bounded_interface, eval_decide, evaluate_parallel, max_eval_decide, partial_eval_decide,
    Engine,
};
use wdpt_gen::music::{figure1_wdpt, music_catalog, MusicParams};
use wdpt_gen::reductions::three_col_instance;
use wdpt_gen::trees::chain_wdpt;
use wdpt_model::{Interner, Mapping};

fn bench_eval_on_figure1() {
    section("wdpt/eval_figure1_catalog");
    for bands in [50usize, 200, 800] {
        let mut i = Interner::new();
        let db = music_catalog(
            &mut i,
            MusicParams {
                bands,
                ..MusicParams::default()
            },
        );
        let p = figure1_wdpt(&mut i);
        let answers = wdpt_core::evaluate(&p, &db);
        let h = answers.iter().max_by_key(|m| m.len()).unwrap().clone();
        bench_case(&format!("thm6_tw1/{bands}"), || {
            eval_bounded_interface(&p, &db, &h, Engine::Tw(1));
        });
        bench_case(&format!("thm6_backtrack/{bands}"), || {
            eval_bounded_interface(&p, &db, &h, Engine::Backtrack);
        });
        bench_case(&format!("general/{bands}"), || {
            eval_decide(&p, &db, &h);
        });
    }
}

fn bench_enumeration_parallel() {
    section("wdpt/enumerate_figure1_catalog");
    for bands in [100usize, 400] {
        let mut i = Interner::new();
        let db = music_catalog(
            &mut i,
            MusicParams {
                bands,
                ..MusicParams::default()
            },
        );
        let p = figure1_wdpt(&mut i);
        bench_case(&format!("sequential/{bands}"), || {
            wdpt_core::evaluate(&p, &db);
        });
        for threads in [2usize, 4] {
            bench_case(&format!("parallel{threads}/{bands}"), || {
                evaluate_parallel(&p, &db, threads);
            });
        }
    }
}

fn bench_eval_hard_instances() {
    section("wdpt/eval_3col_reduction");
    for n in [4usize, 6, 8] {
        let mut i = Interner::new();
        let edges = wdpt_gen::db::random_undirected_graph(n, (5.0 / n as f64).min(0.9), n as u64);
        let inst = three_col_instance(&mut i, n, &edges);
        bench_case(&format!("general/{n}"), || {
            eval_decide(&inst.wdpt, &inst.db, &inst.candidate);
        });
    }
}

fn bench_partial_and_max() {
    section("wdpt/partial_and_max_eval");
    for depth in [5usize, 15, 30] {
        let mut i = Interner::new();
        let p = chain_wdpt(&mut i, depth, Some(2));
        let (db, _) = wdpt_gen::db::random_graph_db(&mut i, 30, 120, 3);
        let y0 = i.var("y0");
        let h = Mapping::from_pairs(vec![(y0, i.constant("c0"))]);
        bench_case(&format!("partial_tw1/{depth}"), || {
            partial_eval_decide(&p, &db, &h, Engine::Tw(1));
        });
        bench_case(&format!("partial_backtrack/{depth}"), || {
            partial_eval_decide(&p, &db, &h, Engine::Backtrack);
        });
        bench_case(&format!("max_tw1/{depth}"), || {
            max_eval_decide(&p, &db, &h, Engine::Tw(1));
        });
    }
}

fn main() {
    bench_eval_on_figure1();
    bench_enumeration_parallel();
    bench_eval_hard_instances();
    bench_partial_and_max();
}
