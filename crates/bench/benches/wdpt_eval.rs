//! Micro-benchmarks for the WDPT evaluation variants (Table 1 cells):
//! EVAL via the general Σ₂ᵖ procedure vs the Theorem 6 algorithm,
//! PARTIAL-EVAL and MAX-EVAL with the structured engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wdpt_core::{
    eval_bounded_interface, eval_decide, max_eval_decide, partial_eval_decide, Engine,
};
use wdpt_gen::music::{figure1_wdpt, music_catalog, MusicParams};
use wdpt_gen::reductions::three_col_instance;
use wdpt_gen::trees::chain_wdpt;
use wdpt_model::{Interner, Mapping};

fn bench_eval_on_figure1(c: &mut Criterion) {
    let mut group = c.benchmark_group("wdpt/eval_figure1_catalog");
    group.sample_size(20);
    for bands in [50usize, 200, 800] {
        let mut i = Interner::new();
        let db = music_catalog(
            &mut i,
            MusicParams {
                bands,
                ..MusicParams::default()
            },
        );
        let p = figure1_wdpt(&mut i);
        let answers = wdpt_core::evaluate(&p, &db);
        let h = answers.iter().max_by_key(|m| m.len()).unwrap().clone();
        group.bench_with_input(BenchmarkId::new("thm6_tw1", bands), &h, |b, h| {
            b.iter(|| eval_bounded_interface(&p, &db, h, Engine::Tw(1)))
        });
        group.bench_with_input(BenchmarkId::new("thm6_backtrack", bands), &h, |b, h| {
            b.iter(|| eval_bounded_interface(&p, &db, h, Engine::Backtrack))
        });
        group.bench_with_input(BenchmarkId::new("general", bands), &h, |b, h| {
            b.iter(|| eval_decide(&p, &db, h))
        });
    }
    group.finish();
}

fn bench_eval_hard_instances(c: &mut Criterion) {
    let mut group = c.benchmark_group("wdpt/eval_3col_reduction");
    group.sample_size(10);
    for n in [4usize, 6, 8] {
        let mut i = Interner::new();
        let edges = wdpt_gen::db::random_undirected_graph(n, (5.0 / n as f64).min(0.9), n as u64);
        let inst = three_col_instance(&mut i, n, &edges);
        group.bench_with_input(BenchmarkId::new("general", n), &inst, |b, inst| {
            b.iter(|| eval_decide(&inst.wdpt, &inst.db, &inst.candidate))
        });
    }
    group.finish();
}

fn bench_partial_and_max(c: &mut Criterion) {
    let mut group = c.benchmark_group("wdpt/partial_and_max_eval");
    group.sample_size(20);
    for depth in [5usize, 15, 30] {
        let mut i = Interner::new();
        let p = chain_wdpt(&mut i, depth, Some(2));
        let (db, _) = wdpt_gen::db::random_graph_db(&mut i, 30, 120, 3);
        let y0 = i.var("y0");
        let h = Mapping::from_pairs(vec![(y0, i.constant("c0"))]);
        group.bench_with_input(BenchmarkId::new("partial_tw1", depth), &h, |b, h| {
            b.iter(|| partial_eval_decide(&p, &db, h, Engine::Tw(1)))
        });
        group.bench_with_input(BenchmarkId::new("partial_backtrack", depth), &h, |b, h| {
            b.iter(|| partial_eval_decide(&p, &db, h, Engine::Backtrack))
        });
        group.bench_with_input(BenchmarkId::new("max_tw1", depth), &h, |b, h| {
            b.iter(|| max_eval_decide(&p, &db, h, Engine::Tw(1)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_eval_on_figure1,
    bench_eval_hard_instances,
    bench_partial_and_max
);
criterion_main!(benches);
