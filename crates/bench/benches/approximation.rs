//! Micro-benchmarks for semantic optimization and approximation (Table 2
//! and Figure 2): CQ quotient approximations, UWDPT pipelines, and the
//! Figure 2 constructors.
//!
//! Plain `fn main` driven by the std-only [`wdpt_bench::bench_case`]
//! runner (`harness = false`).

use wdpt_approx::cq_approx::{cq_approximations, semantically_in};
use wdpt_approx::figure2::{figure2_p1, figure2_p2};
use wdpt_approx::uwdpt::{in_m_uwb, uwb_approximation, Uwdpt};
use wdpt_bench::{bench_case, section};
use wdpt_core::{Wdpt, WdptBuilder, WidthKind};
use wdpt_cq::ConjunctiveQuery;
use wdpt_model::{Atom, Interner};

fn cycle_query(i: &mut Interner, n: usize) -> ConjunctiveQuery {
    let e = i.pred("e");
    let vs: Vec<_> = (0..n).map(|j| i.var(&format!("v{j}"))).collect();
    ConjunctiveQuery::boolean(
        (0..n)
            .map(|j| Atom::new(e, vec![vs[j].into(), vs[(j + 1) % n].into()]))
            .collect(),
    )
}

fn bench_cq_approximations() {
    section("approx/cq_tw1_approximation");
    for n in [3usize, 5, 7] {
        let mut i = Interner::new();
        let q = cycle_query(&mut i, n);
        bench_case(&format!("cycle/{n}"), || {
            cq_approximations(&q, WidthKind::Tw, 1, &mut i);
        });
    }
}

fn bench_semantic_membership() {
    section("approx/semantic_membership_core");
    for n in [4usize, 6, 8] {
        let mut i = Interner::new();
        // Undirected cycle: folds iff even.
        let e = i.pred("e");
        let vs: Vec<_> = (0..n).map(|j| i.var(&format!("v{j}"))).collect();
        let mut atoms = Vec::new();
        for j in 0..n {
            let a = vs[j];
            let bq = vs[(j + 1) % n];
            atoms.push(Atom::new(e, vec![a.into(), bq.into()]));
            atoms.push(Atom::new(e, vec![bq.into(), a.into()]));
        }
        let q = ConjunctiveQuery::boolean(atoms);
        bench_case(&format!("undirected_cycle/{n}"), || {
            semantically_in(&q, WidthKind::Tw, 1, &mut i);
        });
    }
}

fn bench_uwdpt_pipeline() {
    section("approx/uwb_pipeline");
    for u in [4usize, 12, 24] {
        let mut i = Interner::new();
        let phi = union_of_trees(&mut i, u);
        bench_case(&format!("membership/{u}"), || {
            in_m_uwb(&phi, WidthKind::Tw, 1, &mut i);
        });
        bench_case(&format!("approximation/{u}"), || {
            uwb_approximation(&phi, WidthKind::Tw, 1, &mut i);
        });
    }
}

fn union_of_trees(i: &mut Interner, u: usize) -> Uwdpt {
    let disjuncts: Vec<Wdpt> = (0..u)
        .map(|j| {
            let a = i.pred(&format!("a{j}"));
            let b = i.pred(&format!("b{j}"));
            let x = i.var(&format!("x{j}"));
            let y = i.var(&format!("y{j}"));
            let mut builder = WdptBuilder::new(vec![Atom::new(a, vec![x.into()])]);
            builder.child(0, vec![Atom::new(b, vec![x.into(), y.into()])]);
            builder.build(vec![x, y]).expect("well-designed")
        })
        .collect();
    Uwdpt::new(disjuncts)
}

fn bench_figure2_construction() {
    section("approx/figure2_construction");
    for n in [6usize, 10, 14] {
        let mut i = Interner::new();
        bench_case(&format!("p1/{n}"), || {
            figure2_p1(&mut i, n, 2);
        });
        bench_case(&format!("p2_exponential/{n}"), || {
            figure2_p2(&mut i, n, 2);
        });
    }
}

fn main() {
    bench_cq_approximations();
    bench_semantic_membership();
    bench_uwdpt_pipeline();
    bench_figure2_construction();
}
