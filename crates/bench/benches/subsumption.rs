//! Micro-benchmarks for subsumption and subsumption-equivalence (Table 1,
//! rows ⊑ and ≡ₛ): the exponential outer loop over rooted subtrees vs the
//! polynomial inner PARTIAL-EVAL checks under global tractability.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wdpt_core::{subsumed, subsumption_equivalent, Engine};
use wdpt_gen::trees::{chain_wdpt, star_wdpt};
use wdpt_model::Interner;

fn bench_outer_loop(c: &mut Criterion) {
    // Star trees have 2^branches rooted subtrees: the outer loop dominates.
    let mut group = c.benchmark_group("subsumption/outer_loop_star");
    group.sample_size(10);
    for n in [4usize, 7, 10] {
        group.bench_with_input(BenchmarkId::new("star_vs_star", n), &n, |b, &n| {
            b.iter_with_setup(
                || {
                    let mut i = Interner::new();
                    let p1 = star_wdpt(&mut i, n);
                    let p2 = star_wdpt(&mut i, n);
                    (i, p1, p2)
                },
                |(mut i, p1, p2)| subsumed(&p1, &p2, Engine::Tw(1), &mut i),
            )
        });
    }
    group.finish();
}

fn bench_inner_checks(c: &mut Criterion) {
    // Chain trees have linearly many subtrees: the inner check dominates,
    // and the structured engine keeps it polynomial.
    let mut group = c.benchmark_group("subsumption/inner_checks_chain");
    group.sample_size(10);
    for d in [5usize, 15, 30] {
        group.bench_with_input(BenchmarkId::new("tw1", d), &d, |b, &d| {
            b.iter_with_setup(
                || {
                    let mut i = Interner::new();
                    let p1 = chain_wdpt(&mut i, d, Some(2));
                    let p2 = chain_wdpt(&mut i, d, Some(2));
                    (i, p1, p2)
                },
                |(mut i, p1, p2)| subsumed(&p1, &p2, Engine::Tw(1), &mut i),
            )
        });
        group.bench_with_input(BenchmarkId::new("backtrack", d), &d, |b, &d| {
            b.iter_with_setup(
                || {
                    let mut i = Interner::new();
                    let p1 = chain_wdpt(&mut i, d, Some(2));
                    let p2 = chain_wdpt(&mut i, d, Some(2));
                    (i, p1, p2)
                },
                |(mut i, p1, p2)| subsumed(&p1, &p2, Engine::Backtrack, &mut i),
            )
        });
    }
    group.finish();
}

fn bench_equivalence(c: &mut Criterion) {
    let mut group = c.benchmark_group("subsumption/equivalence");
    group.sample_size(10);
    for d in [5usize, 10, 20] {
        group.bench_with_input(BenchmarkId::new("chain_eq", d), &d, |b, &d| {
            b.iter_with_setup(
                || {
                    let mut i = Interner::new();
                    let p1 = chain_wdpt(&mut i, d, Some(2));
                    let p2 = chain_wdpt(&mut i, d, Some(2));
                    (i, p1, p2)
                },
                |(mut i, p1, p2)| {
                    subsumption_equivalent(&p1, &p2, Engine::Tw(1), Engine::Tw(1), &mut i)
                },
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_outer_loop, bench_inner_checks, bench_equivalence);
criterion_main!(benches);
