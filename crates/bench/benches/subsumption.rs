//! Micro-benchmarks for subsumption and subsumption-equivalence (Table 1,
//! rows ⊑ and ≡ₛ): the exponential outer loop over rooted subtrees vs the
//! polynomial inner PARTIAL-EVAL checks under global tractability.
//!
//! Plain `fn main` driven by the std-only [`wdpt_bench::bench_case`]
//! runner (`harness = false`).

use wdpt_bench::{bench_case, section};
use wdpt_core::{subsumed, subsumption_equivalent, Engine};
use wdpt_gen::trees::{chain_wdpt, star_wdpt};
use wdpt_model::Interner;

fn bench_outer_loop() {
    // Star trees have 2^branches rooted subtrees: the outer loop dominates.
    section("subsumption/outer_loop_star");
    for n in [4usize, 7, 10] {
        let mut i = Interner::new();
        let p1 = star_wdpt(&mut i, n);
        let p2 = star_wdpt(&mut i, n);
        bench_case(&format!("star_vs_star/{n}"), || {
            subsumed(&p1, &p2, Engine::Tw(1), &mut i);
        });
    }
}

fn bench_inner_checks() {
    // Chain trees have linearly many subtrees: the inner check dominates,
    // and the structured engine keeps it polynomial.
    section("subsumption/inner_checks_chain");
    for d in [5usize, 15, 30] {
        let mut i = Interner::new();
        let p1 = chain_wdpt(&mut i, d, Some(2));
        let p2 = chain_wdpt(&mut i, d, Some(2));
        bench_case(&format!("tw1/{d}"), || {
            subsumed(&p1, &p2, Engine::Tw(1), &mut i);
        });
        bench_case(&format!("backtrack/{d}"), || {
            subsumed(&p1, &p2, Engine::Backtrack, &mut i);
        });
    }
}

fn bench_equivalence() {
    section("subsumption/equivalence");
    for d in [5usize, 10, 20] {
        let mut i = Interner::new();
        let p1 = chain_wdpt(&mut i, d, Some(2));
        let p2 = chain_wdpt(&mut i, d, Some(2));
        bench_case(&format!("chain_eq/{d}"), || {
            subsumption_equivalent(&p1, &p2, Engine::Tw(1), Engine::Tw(1), &mut i);
        });
    }
}

fn main() {
    bench_outer_loop();
    bench_inner_checks();
    bench_equivalence();
}
