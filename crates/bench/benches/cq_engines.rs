//! Micro-benchmarks for the CQ engines (Theorems 2 and 3): generic
//! backtracking vs tree-decomposition-guided vs hypertree-guided Boolean
//! evaluation, over growing databases and query sizes.
//!
//! Plain `fn main` driven by the std-only [`wdpt_bench::bench_case`]
//! runner (`harness = false`); set `BENCH_MIN_RUNTIME` to control the
//! per-case measurement window.

use wdpt_bench::{bench_case, section};
use wdpt_cq::structured::{boolean_eval_structured, StructuredPlan};
use wdpt_cq::{backtrack, ConjunctiveQuery};
use wdpt_gen::db::random_graph_db;
use wdpt_model::{Atom, Interner, Mapping, Var};

/// A path CQ `e(v0,v1), …, e(v{n-1},v{n})`.
fn path_cq(i: &mut Interner, n: usize) -> ConjunctiveQuery {
    let e = i.pred("e");
    let vs: Vec<Var> = (0..=n).map(|j| i.var(&format!("v{j}"))).collect();
    ConjunctiveQuery::boolean(
        vs.windows(2)
            .map(|w| Atom::new(e, vec![w[0].into(), w[1].into()]))
            .collect(),
    )
}

/// A cycle CQ of length `n`.
fn cycle_cq(i: &mut Interner, n: usize) -> ConjunctiveQuery {
    let e = i.pred("e");
    let vs: Vec<Var> = (0..n).map(|j| i.var(&format!("v{j}"))).collect();
    ConjunctiveQuery::boolean(
        (0..n)
            .map(|j| Atom::new(e, vec![vs[j].into(), vs[(j + 1) % n].into()]))
            .collect(),
    )
}

fn bench_path_queries() {
    section("cq/path_query_over_db_size");
    for db_edges in [200usize, 800, 3200] {
        let mut i = Interner::new();
        let (db, _) = random_graph_db(&mut i, db_edges / 4, db_edges, 42);
        let q = path_cq(&mut i, 6);
        let tw_plan = StructuredPlan::for_query_tw(&q, 1).unwrap();
        let hw_plan = StructuredPlan::for_query_hw(&q, 1).unwrap();
        bench_case(&format!("backtrack/{db_edges}"), || {
            backtrack::extend_exists(&db, q.body(), &Mapping::empty());
        });
        bench_case(&format!("tw1/{db_edges}"), || {
            boolean_eval_structured(&q, &db, &tw_plan, &Mapping::empty());
        });
        bench_case(&format!("hw1/{db_edges}"), || {
            boolean_eval_structured(&q, &db, &hw_plan, &Mapping::empty());
        });
    }
}

fn bench_cycle_queries() {
    section("cq/cycle_query_over_cycle_length");
    let mut i = Interner::new();
    let (db, _) = random_graph_db(&mut i, 40, 400, 7);
    for n in [4usize, 6, 8] {
        let q = cycle_cq(&mut i, n);
        let tw_plan = StructuredPlan::for_query_tw(&q, 2).unwrap();
        let hw_plan = StructuredPlan::for_query_hw(&q, 2).unwrap();
        bench_case(&format!("backtrack/{n}"), || {
            backtrack::extend_exists(&db, q.body(), &Mapping::empty());
        });
        bench_case(&format!("tw2/{n}"), || {
            boolean_eval_structured(&q, &db, &tw_plan, &Mapping::empty());
        });
        bench_case(&format!("hw2/{n}"), || {
            boolean_eval_structured(&q, &db, &hw_plan, &Mapping::empty());
        });
    }
}

fn bench_plan_construction() {
    section("cq/decomposition_construction");
    let mut i = Interner::new();
    for n in [6usize, 10, 14] {
        let q = cycle_cq(&mut i, n);
        bench_case(&format!("tw_plan/{n}"), || {
            StructuredPlan::for_query_tw(&q, 2).unwrap();
        });
        bench_case(&format!("hw_plan/{n}"), || {
            StructuredPlan::for_query_hw(&q, 2).unwrap();
        });
    }
}

fn main() {
    bench_path_queries();
    bench_cycle_queries();
    bench_plan_construction();
}
