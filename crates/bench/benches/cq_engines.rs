//! Micro-benchmarks for the CQ engines (Theorems 2 and 3): generic
//! backtracking vs tree-decomposition-guided vs hypertree-guided Boolean
//! evaluation, over growing databases and query sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wdpt_cq::structured::{boolean_eval_structured, StructuredPlan};
use wdpt_cq::{backtrack, ConjunctiveQuery};
use wdpt_gen::db::random_graph_db;
use wdpt_model::{Atom, Interner, Mapping, Var};

/// A path CQ `e(v0,v1), …, e(v{n-1},v{n})`.
fn path_cq(i: &mut Interner, n: usize) -> ConjunctiveQuery {
    let e = i.pred("e");
    let vs: Vec<Var> = (0..=n).map(|j| i.var(&format!("v{j}"))).collect();
    ConjunctiveQuery::boolean(
        vs.windows(2)
            .map(|w| Atom::new(e, vec![w[0].into(), w[1].into()]))
            .collect(),
    )
}

/// A cycle CQ of length `n`.
fn cycle_cq(i: &mut Interner, n: usize) -> ConjunctiveQuery {
    let e = i.pred("e");
    let vs: Vec<Var> = (0..n).map(|j| i.var(&format!("v{j}"))).collect();
    ConjunctiveQuery::boolean(
        (0..n)
            .map(|j| Atom::new(e, vec![vs[j].into(), vs[(j + 1) % n].into()]))
            .collect(),
    )
}

fn bench_path_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("cq/path_query_over_db_size");
    group.sample_size(20);
    for db_edges in [200usize, 800, 3200] {
        let mut i = Interner::new();
        let (db, _) = random_graph_db(&mut i, db_edges / 4, db_edges, 42);
        let q = path_cq(&mut i, 6);
        let tw_plan = StructuredPlan::for_query_tw(&q, 1).unwrap();
        let hw_plan = StructuredPlan::for_query_hw(&q, 1).unwrap();
        group.bench_with_input(BenchmarkId::new("backtrack", db_edges), &db, |b, db| {
            b.iter(|| backtrack::extend_exists(db, q.body(), &Mapping::empty()))
        });
        group.bench_with_input(BenchmarkId::new("tw1", db_edges), &db, |b, db| {
            b.iter(|| boolean_eval_structured(&q, db, &tw_plan, &Mapping::empty()))
        });
        group.bench_with_input(BenchmarkId::new("hw1", db_edges), &db, |b, db| {
            b.iter(|| boolean_eval_structured(&q, db, &hw_plan, &Mapping::empty()))
        });
    }
    group.finish();
}

fn bench_cycle_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("cq/cycle_query_over_cycle_length");
    group.sample_size(15);
    let mut i = Interner::new();
    let (db, _) = random_graph_db(&mut i, 40, 400, 7);
    for n in [4usize, 6, 8] {
        let q = cycle_cq(&mut i, n);
        let tw_plan = StructuredPlan::for_query_tw(&q, 2).unwrap();
        let hw_plan = StructuredPlan::for_query_hw(&q, 2).unwrap();
        group.bench_with_input(BenchmarkId::new("backtrack", n), &q, |b, q| {
            b.iter(|| backtrack::extend_exists(&db, q.body(), &Mapping::empty()))
        });
        group.bench_with_input(BenchmarkId::new("tw2", n), &q, |b, q| {
            b.iter(|| boolean_eval_structured(q, &db, &tw_plan, &Mapping::empty()))
        });
        group.bench_with_input(BenchmarkId::new("hw2", n), &q, |b, q| {
            b.iter(|| boolean_eval_structured(q, &db, &hw_plan, &Mapping::empty()))
        });
    }
    group.finish();
}

fn bench_plan_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("cq/decomposition_construction");
    group.sample_size(20);
    let mut i = Interner::new();
    for n in [6usize, 10, 14] {
        let q = cycle_cq(&mut i, n);
        group.bench_with_input(BenchmarkId::new("tw_plan", n), &q, |b, q| {
            b.iter(|| StructuredPlan::for_query_tw(q, 2).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("hw_plan", n), &q, |b, q| {
            b.iter(|| StructuredPlan::for_query_hw(q, 2).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_path_queries,
    bench_cycle_queries,
    bench_plan_construction
);
criterion_main!(benches);
