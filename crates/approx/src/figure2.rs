//! The Figure 2 family: exponential lower bound on approximation size
//! (Theorem 15 of the paper).
//!
//! For every `k ≥ 2` and `n ≥ 1`, the paper exhibits WDPTs `p₁⁽ⁿ⁾` (of
//! size `O(n²)`, outside `WB(k)` through an `(k+1+n)`-clique of `d`-atoms
//! in the root) and `p₂⁽ⁿ⁾` (of size `Ω(2ⁿ)`, inside `g-TW(k)`) such that
//! `p₂ ⊑ p₁`, and every `p₃ ∈ WB(k)` with `p₂ ⊑ p₃ ⊑ p₁` is at least as
//! large as `p₂`. The `e(z₁,…,z_n)` atom of `p₁`'s first leaf must be
//! instantiated by **all** `2ⁿ` tuples over `{α₀, α₁}` in `p₂` — the
//! exponential blow-up.
//!
//! These constructors are consumed by the `figure2` experiment binary and
//! by integration tests that verify `p₂ ⊑ p₁`, `p₂ ∈ g-TW(k)`, and the
//! measured `Ω(2ⁿ)` vs `O(n²)` size gap.

use wdpt_core::{Wdpt, WdptBuilder};
use wdpt_model::{Atom, Interner, Term, Var};

fn free_vars(i: &mut Interner, n: usize) -> Vec<Var> {
    let mut free = vec![i.var("x")];
    for j in 0..=n {
        free.push(i.var(&format!("x{j}")));
    }
    free
}

/// Builds `p₁⁽ⁿ⁾` of Figure 2 for parameters `n ≥ 1` and `k ≥ 2`.
pub fn figure2_p1(i: &mut Interner, n: usize, k: usize) -> Wdpt {
    assert!(n >= 1 && k >= 1);
    let alphas: Vec<Var> = (0..=k).map(|j| i.var(&format!("alpha{j}"))).collect();
    let zs: Vec<Var> = (1..=n).map(|j| i.var(&format!("z{j}"))).collect();
    let x = i.var("x");
    let a = i.pred("a");
    let d = i.pred("d");
    let e = i.pred("e");

    let mut root: Vec<Atom> = vec![Atom::new(a, vec![x.into()])];
    for (j, &al) in alphas.iter().enumerate() {
        let bj = i.pred(&format!("b{j}"));
        root.push(Atom::new(bj, vec![al.into()]));
    }
    for j in 1..=n {
        let cj = i.pred(&format!("c{j}"));
        root.push(Atom::new(cj, vec![alphas[0].into()]));
        root.push(Atom::new(cj, vec![zs[j - 1].into()]));
    }
    root.push(Atom::new(d, vec![alphas[0].into(), alphas[0].into()]));
    root.push(Atom::new(d, vec![alphas[1].into(), alphas[1].into()]));
    let clique: Vec<Var> = alphas.iter().chain(zs.iter()).copied().collect();
    for &u in &clique {
        for &v in &clique {
            if u != v {
                root.push(Atom::new(d, vec![u.into(), v.into()]));
            }
        }
    }

    let mut builder = WdptBuilder::new(root);
    // First leaf: a_0(x_0), e(z_1, …, z_n).
    let a0 = i.pred("a0");
    let x0 = i.var("x0");
    let e_args: Vec<Term> = zs.iter().map(|&z| z.into()).collect();
    builder.child(
        0,
        vec![Atom::new(a0, vec![x0.into()]), Atom::new(e, e_args)],
    );
    // Leaves 1..n: a_i(x_i), b_i(z_i), c_i(α_1).
    for j in 1..=n {
        let aj = i.pred(&format!("a{j}"));
        let xj = i.var(&format!("x{j}"));
        let bj = i.pred(&format!("b{j}"));
        let cj = i.pred(&format!("c{j}"));
        builder.child(
            0,
            vec![
                Atom::new(aj, vec![xj.into()]),
                Atom::new(bj, vec![zs[j - 1].into()]),
                Atom::new(cj, vec![alphas[1].into()]),
            ],
        );
    }
    let free = free_vars(i, n);
    builder.build(free).expect("p1 is well-designed")
}

/// Builds `p₂⁽ⁿ⁾` of Figure 2: the `Ω(2ⁿ)`-size approximation.
pub fn figure2_p2(i: &mut Interner, n: usize, k: usize) -> Wdpt {
    assert!(n >= 1 && k >= 1);
    let alphas: Vec<Var> = (0..=k).map(|j| i.var(&format!("alpha{j}"))).collect();
    let x = i.var("x");
    let a = i.pred("a");
    let d = i.pred("d");
    let e = i.pred("e");

    let mut root: Vec<Atom> = vec![Atom::new(a, vec![x.into()])];
    for (j, &al) in alphas.iter().enumerate() {
        let bj = i.pred(&format!("b{j}"));
        root.push(Atom::new(bj, vec![al.into()]));
    }
    for j in 1..=n {
        let cj = i.pred(&format!("c{j}"));
        root.push(Atom::new(cj, vec![alphas[0].into()]));
    }
    for &u in &alphas {
        for &v in &alphas {
            if u != v {
                root.push(Atom::new(d, vec![u.into(), v.into()]));
            }
        }
    }
    root.push(Atom::new(d, vec![alphas[0].into(), alphas[0].into()]));
    root.push(Atom::new(d, vec![alphas[1].into(), alphas[1].into()]));

    let mut builder = WdptBuilder::new(root);
    // First leaf: a_0(x_0) plus ALL 2^n instantiations e(ᾱ),
    // ᾱ ∈ {α_0, α_1}^n.
    let a0 = i.pred("a0");
    let x0 = i.var("x0");
    let mut leaf0 = vec![Atom::new(a0, vec![x0.into()])];
    for mask in 0u64..(1u64 << n) {
        let args: Vec<Term> = (0..n)
            .map(|j| {
                if mask & (1 << j) != 0 {
                    alphas[1].into()
                } else {
                    alphas[0].into()
                }
            })
            .collect();
        leaf0.push(Atom::new(e, args));
    }
    builder.child(0, leaf0);
    // Leaves 1..n: a_i(x_i), b_i(α_1), c_i(α_1). The b_i(α_1) atom hosts
    // the image of p₁'s b_i(z_i) under the subsumption homomorphisms that
    // send z_i ↦ α_1 exactly when leaf i is included (proof sketch of
    // Theorem 15).
    for j in 1..=n {
        let aj = i.pred(&format!("a{j}"));
        let xj = i.var(&format!("x{j}"));
        let bj = i.pred(&format!("b{j}"));
        let cj = i.pred(&format!("c{j}"));
        builder.child(
            0,
            vec![
                Atom::new(aj, vec![xj.into()]),
                Atom::new(bj, vec![alphas[1].into()]),
                Atom::new(cj, vec![alphas[1].into()]),
            ],
        );
    }
    let free = free_vars(i, n);
    builder.build(free).expect("p2 is well-designed")
}

/// Total number of atoms in a WDPT (a proxy for the paper's `|p|`).
pub fn atom_count(p: &Wdpt) -> usize {
    (0..p.node_count()).map(|t| p.atoms(t).len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdpt_core::{is_globally_in, subsumed, Engine, WidthKind};
    use wdpt_model::Interner;

    #[test]
    fn sizes_grow_as_claimed() {
        let mut i = Interner::new();
        for n in 1..=6 {
            let k = 2;
            let p1 = figure2_p1(&mut i, n, k);
            let p2 = figure2_p2(&mut i, n, k);
            // |p1| = O(n²), |p2| ≥ 2^n.
            assert!(atom_count(&p1) <= 4 * (n + k + 2) * (n + k + 2));
            assert!(atom_count(&p2) >= 1 << n);
        }
    }

    #[test]
    fn p2_is_subsumed_by_p1() {
        let mut i = Interner::new();
        let (n, k) = (3, 2);
        let p1 = figure2_p1(&mut i, n, k);
        let p2 = figure2_p2(&mut i, n, k);
        assert!(subsumed(&p2, &p1, Engine::Backtrack, &mut i));
    }

    #[test]
    fn p1_is_not_subsumed_by_p2() {
        let mut i = Interner::new();
        let (n, k) = (3, 2);
        let p1 = figure2_p1(&mut i, n, k);
        let p2 = figure2_p2(&mut i, n, k);
        assert!(!subsumed(&p1, &p2, Engine::Backtrack, &mut i));
    }

    #[test]
    fn p2_is_globally_tractable_p1_is_not() {
        let mut i = Interner::new();
        let (n, k) = (3, 2);
        let p1 = figure2_p1(&mut i, n, k);
        let p2 = figure2_p2(&mut i, n, k);
        assert!(is_globally_in(&p2, WidthKind::Tw, k));
        assert!(!is_globally_in(&p1, WidthKind::Tw, k));
    }

    #[test]
    fn both_trees_share_free_variables() {
        let mut i = Interner::new();
        let p1 = figure2_p1(&mut i, 2, 2);
        let p2 = figure2_p2(&mut i, 2, 2);
        assert_eq!(p1.free_vars(), p2.free_vars());
        assert_eq!(p1.free_vars().len(), 4); // x, x0, x1, x2
    }
}
