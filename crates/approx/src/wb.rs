//! `WB(k)` semantic optimization and approximation for single WDPTs
//! (Section 5 of the paper).
//!
//! The paper's exact algorithms are a NEXPTIME^NP guess-and-check for
//! `M(WB(k))` membership (Theorem 13) and a double-exponential construction
//! for `WB(k)`-approximations (Theorem 14); both hinge on Lemma 1's
//! exponential bound on witness size. A faithful implementation therefore
//! splits into:
//!
//! * the **exact checkers** — [`is_wb_equivalent_witness`] (is `p'` a
//!   certificate for `p ∈ M(WB(k))`?) and [`is_wb_approximation_witness`]
//!   (does `p'` satisfy Definition 4 relative to a candidate pool?); these
//!   are the polynomial-per-certificate "verify" halves of the paper's
//!   nondeterministic algorithms, implemented exactly;
//! * a **bounded search** over the natural candidate space — rooted-subtree
//!   prunings of `p` combined with quotients (variable mergings) of the
//!   labels, the WDPT analogue of the quotient space that is complete for
//!   CQs ([4]). The full Lemma-1 space additionally allows node labels
//!   carrying *several* homomorphic images (the Figure 2 blow-up); that
//!   space is doubly exponential and is represented here by the explicit
//!   [`crate::figure2`] family rather than by blind enumeration.

use std::collections::{BTreeMap, BTreeSet};
use wdpt_core::{in_wb, subsumed, subsumption_equivalent, Engine, Wdpt, WdptBuilder, WidthKind};
use wdpt_cq::quotient::apply_var_subst;
use wdpt_model::{Interner, Var};

/// Exact certificate check for Theorem 13: `p' ∈ WB(k)` and `p ≡ₛ p'`.
pub fn is_wb_equivalent_witness(
    p: &Wdpt,
    candidate: &Wdpt,
    kind: WidthKind,
    k: usize,
    interner: &mut Interner,
) -> bool {
    in_wb(candidate, kind, k)
        && subsumption_equivalent(p, candidate, Engine::Backtrack, Engine::Backtrack, interner)
}

/// Practical ceiling on the candidate pool size.
pub const CANDIDATE_POOL_LIMIT: usize = 200_000;

/// The pruning × quotient candidate space: every rooted subtree of `p` with
/// every well-designed quotient of its labels (existential variables merged
/// into each other or into free variables). Free variables are never merged
/// with one another; candidates keep `p`'s free variables restricted to the
/// surviving nodes.
pub fn candidate_pool(p: &Wdpt) -> Vec<Wdpt> {
    let _span = wdpt_obs::span!("approx.wb.candidate_pool");
    let free: BTreeSet<Var> = p.free_set();
    let mut pool = Vec::new();
    let mut subtrees = Vec::new();
    p.for_each_rooted_subtree(&mut |s| subtrees.push(s.clone()));
    for subtree in subtrees {
        let vars: Vec<Var> = p.subtree_vars(&subtree).into_iter().collect();
        // Enumerate partitions (no two free variables together).
        let mut classes: Vec<Vec<Var>> = Vec::new();
        partitions(p, &subtree, &free, &vars, 0, &mut classes, &mut pool);
        assert!(
            pool.len() <= CANDIDATE_POOL_LIMIT,
            "candidate pool exceeded {CANDIDATE_POOL_LIMIT} entries"
        );
    }
    pool
}

fn partitions(
    p: &Wdpt,
    subtree: &wdpt_core::Subtree,
    free: &BTreeSet<Var>,
    vars: &[Var],
    idx: usize,
    classes: &mut Vec<Vec<Var>>,
    pool: &mut Vec<Wdpt>,
) {
    if idx == vars.len() {
        if let Some(candidate) = build_candidate(p, subtree, free, classes) {
            pool.push(candidate);
        }
        return;
    }
    let v = vars[idx];
    let is_free = free.contains(&v);
    for c in 0..classes.len() {
        if is_free && classes[c].iter().any(|w| free.contains(w)) {
            continue;
        }
        classes[c].push(v);
        partitions(p, subtree, free, vars, idx + 1, classes, pool);
        classes[c].pop();
    }
    classes.push(vec![v]);
    partitions(p, subtree, free, vars, idx + 1, classes, pool);
    classes.pop();
}

fn build_candidate(
    p: &Wdpt,
    subtree: &wdpt_core::Subtree,
    free: &BTreeSet<Var>,
    classes: &[Vec<Var>],
) -> Option<Wdpt> {
    let mut subst: BTreeMap<Var, Var> = BTreeMap::new();
    for class in classes {
        let rep = class
            .iter()
            .copied()
            .find(|v| free.contains(v))
            .unwrap_or_else(|| *class.iter().min().expect("non-empty class"));
        for &v in class {
            subst.insert(v, rep);
        }
    }
    // Rebuild the pruned tree with substituted labels. Parents always have
    // smaller node ids than their children (builder invariant), so the
    // ascending BTreeSet order processes parents first and the builder
    // reassigns ids exactly as recorded in `id_of`.
    let nodes: Vec<usize> = subtree.iter().copied().collect();
    let id_of: BTreeMap<usize, usize> = nodes.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let mut builder: Option<WdptBuilder> = None;
    for &t in &nodes {
        let atoms = apply_var_subst(p.atoms(t), &subst);
        match p.parent(t) {
            None => builder = Some(WdptBuilder::new(atoms)),
            Some(parent) => {
                let b = builder
                    .as_mut()
                    .expect("root comes first in BTreeSet order");
                let mapped = *id_of.get(&parent).expect("subtree is parent-closed");
                b.child(mapped, atoms);
            }
        }
    }
    let builder = builder?;
    let kept_vars: BTreeSet<Var> = subtree
        .iter()
        .flat_map(|&t| apply_var_subst(p.atoms(t), &subst))
        .flat_map(|a| a.var_set())
        .collect();
    let free_kept: Vec<Var> = p
        .free_vars()
        .iter()
        .copied()
        .filter(|v| kept_vars.contains(v))
        .collect();
    builder.build(free_kept).ok()
}

/// Bounded search for a `WB(k)`-equivalent tree: returns a witness from the
/// pruning × quotient pool, trying `p` itself first. Sound (any returned
/// tree is a valid Theorem 13 certificate); complete relative to the pool.
pub fn find_wb_equivalent(
    p: &Wdpt,
    kind: WidthKind,
    k: usize,
    interner: &mut Interner,
) -> Option<Wdpt> {
    let _span = wdpt_obs::span!("approx.wb.find_equivalent");
    if in_wb(p, kind, k) {
        return Some(p.clone());
    }
    candidate_pool(p)
        .into_iter()
        .find(|cand| is_wb_equivalent_witness(p, cand, kind, k, interner))
}

/// `WB(k)`-approximations of `p` relative to the pruning × quotient pool:
/// candidates in `WB(k)` subsumed by `p`, keeping only the ⊑-maximal ones
/// (Definition 4 restricted to the pool).
pub fn wb_approximations(
    p: &Wdpt,
    kind: WidthKind,
    k: usize,
    interner: &mut Interner,
) -> Vec<Wdpt> {
    let _span = wdpt_obs::span!("approx.wb.approximations");
    let sound: Vec<Wdpt> = candidate_pool(p)
        .into_iter()
        .filter(|cand| in_wb(cand, kind, k))
        .filter(|cand| subsumed(cand, p, Engine::Backtrack, interner))
        .collect();
    let mut maximal: Vec<Wdpt> = Vec::new();
    'next: for cand in sound {
        let mut dominated_kept = Vec::new();
        for kept in &maximal {
            if subsumed(&cand, kept, Engine::Backtrack, interner) {
                continue 'next;
            }
            if subsumed(kept, &cand, Engine::Backtrack, interner) {
                dominated_kept.push(kept.clone());
            }
        }
        maximal.retain(|kept| !dominated_kept.contains(kept));
        maximal.push(cand);
    }
    maximal
}

/// Exact checker for the `WB(k)`-APPROXIMATION problem (Proposition 8),
/// with maximality verified against the pruning × quotient pool: `p'` must
/// be in `WB(k)`, `p' ⊑ p`, and no pool candidate `p''` in `WB(k)` may
/// satisfy `p' ⊏ p'' ⊑ p`.
pub fn is_wb_approximation_witness(
    candidate: &Wdpt,
    p: &Wdpt,
    kind: WidthKind,
    k: usize,
    interner: &mut Interner,
) -> bool {
    if !in_wb(candidate, kind, k) || !subsumed(candidate, p, Engine::Backtrack, interner) {
        return false;
    }
    for other in candidate_pool(p) {
        if !in_wb(&other, kind, k) || !subsumed(&other, p, Engine::Backtrack, interner) {
            continue;
        }
        let cand_below = subsumed(candidate, &other, Engine::Backtrack, interner);
        let other_below = subsumed(&other, candidate, Engine::Backtrack, interner);
        if cand_below && !other_below {
            return false; // candidate ⊏ other ⊑ p
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdpt_model::parse::parse_atoms;

    fn single(i: &mut Interner, head: &[&str], body: &str) -> Wdpt {
        let atoms = parse_atoms(i, body).unwrap();
        let free = head.iter().map(|n| i.var(n)).collect();
        WdptBuilder::new(atoms).build(free).unwrap()
    }

    #[test]
    fn tree_already_in_wb_is_its_own_witness() {
        let mut i = Interner::new();
        let p = single(&mut i, &["x"], "e(?x,?y)");
        let w = find_wb_equivalent(&p, WidthKind::Tw, 1, &mut i).unwrap();
        assert_eq!(w, p);
    }

    #[test]
    fn foldable_triangle_has_wb1_witness() {
        let mut i = Interner::new();
        // Undirected triangle with a loop: folds onto the loop, which is
        // TW(1). (Boolean single-node tree = CQ case.)
        let p = single(&mut i, &[], "e(?x,?y) e(?y,?z) e(?z,?x) e(?w,?w) e(?x,?w)");
        assert!(!in_wb(&p, WidthKind::Tw, 1));
        let w = find_wb_equivalent(&p, WidthKind::Tw, 1, &mut i);
        assert!(w.is_some(), "triangle with loop folds to the loop");
        assert!(in_wb(&w.unwrap(), WidthKind::Tw, 1));
    }

    #[test]
    fn genuine_triangle_has_no_wb1_witness() {
        let mut i = Interner::new();
        let p = single(&mut i, &[], "e(?x,?y) e(?y,?z) e(?z,?x)");
        assert!(find_wb_equivalent(&p, WidthKind::Tw, 1, &mut i).is_none());
    }

    #[test]
    fn approximations_of_triangle_tree() {
        let mut i = Interner::new();
        let p = single(&mut i, &[], "e(?x,?y) e(?y,?z) e(?z,?x)");
        let approxs = wb_approximations(&p, WidthKind::Tw, 1, &mut i);
        assert!(!approxs.is_empty());
        for a in &approxs {
            assert!(in_wb(a, WidthKind::Tw, 1));
            assert!(subsumed(a, &p, Engine::Backtrack, &mut i));
            assert!(is_wb_approximation_witness(a, &p, WidthKind::Tw, 1, &mut i));
        }
    }

    #[test]
    fn approximation_witness_rejects_non_maximal() {
        let mut i = Interner::new();
        // p = 2-path (already TW(1)); a candidate that merges its endpoints
        // is sound but NOT maximal (p itself dominates it).
        let p = single(&mut i, &[], "e(?a,?b) e(?b,?c)");
        let weak = single(&mut i, &[], "e(?a,?b) e(?b,?a)");
        assert!(subsumed(&weak, &p, Engine::Backtrack, &mut i));
        assert!(!is_wb_approximation_witness(
            &weak,
            &p,
            WidthKind::Tw,
            1,
            &mut i
        ));
        assert!(is_wb_approximation_witness(
            &p,
            &p,
            WidthKind::Tw,
            1,
            &mut i
        ));
    }

    #[test]
    fn optional_branch_survives_in_pool() {
        let mut i = Interner::new();
        let root = parse_atoms(&mut i, "a(?x)").unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(0, parse_atoms(&mut i, "b(?x,?y)").unwrap());
        let p = b.build(vec![i.var("x"), i.var("y")]).unwrap();
        let pool = candidate_pool(&p);
        // Pool contains the root-only pruning and the full tree (plus
        // quotients); all are well-designed.
        assert!(pool.iter().any(|c| c.node_count() == 1));
        assert!(pool.iter().any(|c| c.node_count() == 2));
    }

    #[test]
    fn wb_equivalent_tree_via_pruned_redundant_branch() {
        let mut i = Interner::new();
        // The optional branch repeats the root's atom with a cyclic label:
        // pruning it yields a WB(1) tree that is ≡ₛ to p... the branch is a
        // triangle on root variables, never binding anything new, and the
        // root already requires e(?x,?y).
        let root = parse_atoms(&mut i, "e(?x,?y) e(?y,?x)").unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(
            0,
            parse_atoms(&mut i, "e(?x,?y) e(?y,?x) e(?x,?x)").unwrap(),
        );
        let p = b.build(vec![i.var("x"), i.var("y")]).unwrap();
        // The full tree IS in g-TW(1)? Root is a 2-cycle (tw 1); with the
        // child the subtree gains e(x,x): still tw 1. So p ∈ WB(1) already.
        let w = find_wb_equivalent(&p, WidthKind::Tw, 1, &mut i);
        assert!(w.is_some());
    }
}
