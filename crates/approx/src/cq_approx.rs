//! CQ-level semantic membership and approximation (the paper's [4]).
//!
//! * **Semantic membership.** A CQ is equivalent to one in `C(k)` iff its
//!   core is in `C(k)`, for any class `C(k)` closed under taking retract
//!   images — true for `TW(k)` (Dalmau–Kolaitis–Vardi, [10]) and for the
//!   subquery-closed `HW'(k)` (the very reason Section 5 replaces `HW(k)`
//!   with `HW'(k)`).
//! * **Approximation.** Every `C(k)`-approximation of `q` is equivalent to
//!   a ⊆-maximal quotient of `q` belonging to `C(k)` (Barceló–Libkin–Romero
//!   [4]); since a quotient is a homomorphic image, `q/θ ⊆ q` always holds,
//!   so enumerating quotients, filtering by width, and keeping the
//!   ⊆-maximal ones is a *complete* approximation algorithm (exponential in
//!   `|q|`, matching the single-exponential bound of [4]).

use wdpt_core::WidthKind;
use wdpt_cq::containment::{contained_in, equivalent};
use wdpt_cq::core_of::core_of;
use wdpt_cq::quotient::quotients;
use wdpt_cq::widths;
use wdpt_cq::ConjunctiveQuery;
use wdpt_model::Interner;

fn in_class(q: &ConjunctiveQuery, kind: WidthKind, k: usize) -> bool {
    match kind {
        WidthKind::Tw => widths::in_tw(q, k),
        WidthKind::Hw => widths::in_hw(q, k),
        WidthKind::HwPrime => widths::in_hw_prime(q, k),
    }
}

/// Is `q` equivalent to some CQ in `C(k)`? Decided through the core.
///
/// For `WidthKind::Hw` this implements the test with `HW'(k)` semantics
/// (the subquery-closed variant), matching the paper's Section 5/6 usage —
/// plain `HW(k)` is not closed under retracts and admits no core-based test.
pub fn semantically_in(
    q: &ConjunctiveQuery,
    kind: WidthKind,
    k: usize,
    interner: &mut Interner,
) -> bool {
    let kind = match kind {
        WidthKind::Hw => WidthKind::HwPrime,
        other => other,
    };
    in_class(&core_of(q, interner), kind, k)
}

/// All `C(k)`-approximations of `q`, up to equivalence: the ⊆-maximal
/// quotients of `q` that lie in `C(k)`. Each returned query `q'` satisfies
/// `q' ⊆ q`, `q' ∈ C(k)`, and no other returned query strictly contains it.
/// Returns the empty vector only if no quotient lies in `C(k)` (which
/// cannot happen for `k ≥ 1`: the total collapse of each connected
/// component is acyclic).
pub fn cq_approximations(
    q: &ConjunctiveQuery,
    kind: WidthKind,
    k: usize,
    interner: &mut Interner,
) -> Vec<ConjunctiveQuery> {
    let mut in_k: Vec<ConjunctiveQuery> = quotients(q)
        .into_iter()
        .filter(|cand| in_class(cand, kind, k))
        .collect();
    // Keep ⊆-maximal representatives, deduplicating equivalents.
    let mut maximal: Vec<ConjunctiveQuery> = Vec::new();
    in_k.sort_by_key(|c| c.body().len());
    'next: for cand in in_k {
        let mut replaced = Vec::new();
        for kept in &maximal {
            if contained_in(&cand, kept, interner) {
                // cand ⊆ kept: cand is dominated (or equivalent).
                continue 'next;
            }
            if contained_in(kept, &cand, interner) {
                replaced.push(kept.clone());
            }
        }
        maximal.retain(|kept| !replaced.contains(kept));
        maximal.push(cand);
    }
    maximal
}

/// The single best approximation when the maximal quotients happen to be
/// unique up to equivalence, else `None`.
pub fn unique_cq_approximation(
    q: &ConjunctiveQuery,
    kind: WidthKind,
    k: usize,
    interner: &mut Interner,
) -> Option<ConjunctiveQuery> {
    let mut approxs = cq_approximations(q, kind, k, interner);
    let first = approxs.pop()?;
    if approxs
        .iter()
        .all(|other| equivalent(other, &first, interner))
    {
        Some(first)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdpt_model::parse::parse_atoms;

    fn q(i: &mut Interner, head: &[&str], body: &str) -> ConjunctiveQuery {
        let atoms = parse_atoms(i, body).unwrap();
        let head = head.iter().map(|n| i.var(n)).collect();
        ConjunctiveQuery::new(head, atoms)
    }

    #[test]
    fn acyclic_query_is_semantically_tw1() {
        let mut i = Interner::new();
        let path = q(&mut i, &[], "e(?a,?b) e(?b,?c)");
        assert!(semantically_in(&path, WidthKind::Tw, 1, &mut i));
    }

    #[test]
    fn triangle_is_not_semantically_tw1() {
        let mut i = Interner::new();
        let tri = q(&mut i, &[], "e(?x,?y) e(?y,?z) e(?z,?x)");
        assert!(!semantically_in(&tri, WidthKind::Tw, 1, &mut i));
        assert!(semantically_in(&tri, WidthKind::Tw, 2, &mut i));
    }

    #[test]
    fn redundant_cycle_is_semantically_tw1() {
        let mut i = Interner::new();
        // Undirected 4-cycle folds onto an edge: semantically TW(1).
        let c4 = q(
            &mut i,
            &[],
            "e(?x,?y) e(?y,?x) e(?y,?z) e(?z,?y) e(?z,?w) e(?w,?z) e(?w,?x) e(?x,?w)",
        );
        assert!(semantically_in(&c4, WidthKind::Tw, 1, &mut i));
    }

    #[test]
    fn approximation_of_triangle_in_tw1() {
        let mut i = Interner::new();
        let tri = q(&mut i, &[], "e(?x,?y) e(?y,?z) e(?z,?x)");
        let approxs = cq_approximations(&tri, WidthKind::Tw, 1, &mut i);
        assert!(!approxs.is_empty());
        for a in &approxs {
            assert!(widths::in_tw(a, 1));
            assert!(contained_in(a, &tri, &mut i));
        }
        // The classical TW(1)-approximation of the triangle is the
        // self-loop e(x,x): the only 3-colorable... rather, the quotient
        // merging all three variables. It is the unique maximal one.
        let loopq = q(&mut i, &[], "e(?s,?s)");
        assert!(approxs.iter().any(|a| equivalent(a, &loopq, &mut i)));
    }

    #[test]
    fn approximation_of_tw1_query_is_itself() {
        let mut i = Interner::new();
        let path = q(&mut i, &["a"], "e(?a,?b) e(?b,?c)");
        let approxs = cq_approximations(&path, WidthKind::Tw, 1, &mut i);
        assert_eq!(approxs.len(), 1);
        assert!(equivalent(&approxs[0], &path, &mut i));
    }

    #[test]
    fn approximations_are_incomparable() {
        let mut i = Interner::new();
        let c5 = q(
            &mut i,
            &[],
            "e(?x1,?x2) e(?x2,?x3) e(?x3,?x4) e(?x4,?x5) e(?x5,?x1)",
        );
        let approxs = cq_approximations(&c5, WidthKind::Tw, 1, &mut i);
        for (a, b) in approxs
            .iter()
            .enumerate()
            .flat_map(|(ia, a)| approxs[ia + 1..].iter().map(move |b| (a, b)))
        {
            assert!(!contained_in(a, b, &mut i) || !contained_in(b, a, &mut i));
        }
    }

    #[test]
    fn head_variables_survive_approximation() {
        let mut i = Interner::new();
        let tri = q(&mut i, &["x"], "e(?x,?y) e(?y,?z) e(?z,?x)");
        let approxs = cq_approximations(&tri, WidthKind::Tw, 1, &mut i);
        let x = i.var("x");
        for a in &approxs {
            assert_eq!(a.head(), &[x]);
        }
    }

    #[test]
    fn hw_semantics_uses_subquery_closed_variant() {
        let mut i = Interner::new();
        // Clique + covering atom: the core keeps everything (the big atom
        // cannot be dropped), is in HW(1) but not HW'(1).
        let mut body = String::new();
        for a in 1..=4 {
            for b in a + 1..=4 {
                body.push_str(&format!("e(?x{a},?x{b}) "));
            }
        }
        body.push_str("t(?x1,?x2,?x3,?x4)");
        let theta = q(&mut i, &[], &body);
        assert!(!semantically_in(&theta, WidthKind::Hw, 1, &mut i));
        assert!(semantically_in(&theta, WidthKind::HwPrime, 2, &mut i));
    }

    #[test]
    fn unique_approximation_when_it_exists() {
        let mut i = Interner::new();
        let tri = q(&mut i, &[], "e(?x,?y) e(?y,?z) e(?z,?x)");
        let u = unique_cq_approximation(&tri, WidthKind::Tw, 1, &mut i);
        assert!(u.is_some());
    }
}
