//! Unions of WDPTs (Section 6 of the paper).
//!
//! A UWDPT is `φ = ⋃ p_i` with `φ(D) = ⋃ p_i(D)` (disjuncts may have
//! different free-variable tuples). The evaluation variants lift
//! disjunct-wise (Theorem 16). The star of Section 6 is the translation
//! `φ_cq` — the union of the projected subtree CQs `r_{T'}` — which is
//! ≡ₛ-equivalent to `φ` and turns semantic optimization and approximation
//! into **CQ** problems: membership in `M(UWB(k))` reduces to per-CQ
//! semantic membership via cores (Proposition 9 / Theorem 17), and the
//! `UWB(k)`-approximation is the union of the per-CQ approximations
//! (Theorem 18), computable exactly in single-exponential time — the stark
//! contrast with the single-WDPT case.

use crate::cq_approx::{cq_approximations, semantically_in};
use wdpt_core::{
    eval_decide, partial_eval_decide, variants::has_proper_extension, Engine, Wdpt, WidthKind,
};
use wdpt_cq::containment::{contained_in, freeze, subsumed_cq};
use wdpt_cq::core_of::core_of;
use wdpt_cq::ConjunctiveQuery;
use wdpt_model::{mapping::maximal_mappings, Database, Interner, Mapping};

/// A union of WDPTs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Uwdpt {
    /// The disjuncts `p_1, …, p_n`.
    pub disjuncts: Vec<Wdpt>,
}

impl Uwdpt {
    /// Creates a union from its disjuncts.
    pub fn new(disjuncts: Vec<Wdpt>) -> Self {
        assert!(!disjuncts.is_empty(), "a UWDPT needs at least one disjunct");
        Uwdpt { disjuncts }
    }

    /// A union with a single disjunct.
    pub fn singleton(p: Wdpt) -> Self {
        Uwdpt::new(vec![p])
    }

    /// `φ(D) = ⋃ p_i(D)` (small-scale exact semantics).
    pub fn evaluate(&self, db: &Database) -> Vec<Mapping> {
        let mut out: std::collections::BTreeSet<Mapping> = Default::default();
        for p in &self.disjuncts {
            out.extend(wdpt_core::evaluate(p, db));
        }
        out.into_iter().collect()
    }

    /// `φ_m(D)`: the ⊑-maximal elements of `φ(D)`.
    pub fn evaluate_max(&self, db: &Database) -> Vec<Mapping> {
        maximal_mappings(self.evaluate(db))
    }

    /// ∪-EVAL: `h ∈ φ(D)` (Theorem 16.1 delegates per disjunct).
    pub fn eval_decide(&self, db: &Database, h: &Mapping) -> bool {
        self.disjuncts.iter().any(|p| eval_decide(p, db, h))
    }

    /// ∪-PARTIAL-EVAL: some answer of some disjunct extends `h`
    /// (Theorem 16.2).
    pub fn partial_eval_decide(&self, db: &Database, h: &Mapping, engine: Engine) -> bool {
        self.disjuncts
            .iter()
            .any(|p| partial_eval_decide(p, db, h, engine))
    }

    /// ∪-MAX-EVAL: `h ∈ φ_m(D)` — `h` is an answer of some disjunct and no
    /// disjunct has an answer strictly extending `h` (Theorem 16.2).
    pub fn max_eval_decide(&self, db: &Database, h: &Mapping, engine: Engine) -> bool {
        // h must project exactly from some disjunct (h ∈ ⋃A_i; being
        // maximal within one disjunct is not required — maximality is
        // checked union-wide below).
        let exact = self
            .disjuncts
            .iter()
            .any(|p| is_exact_projection(p, db, h, engine));
        if !exact {
            return false;
        }
        // …and no disjunct may strictly extend it.
        !self
            .disjuncts
            .iter()
            .any(|p| has_proper_extension(p, db, h, engine))
    }
}

/// Does some homomorphism of `p` project exactly to `h`? (The `h ∈ A`
/// check of the MAX-EVAL analysis.)
fn is_exact_projection(p: &Wdpt, db: &Database, h: &Mapping, engine: Engine) -> bool {
    let dom = h.domain();
    if !dom.is_subset(&p.free_set()) {
        return false;
    }
    let Some(t1) = p.minimal_subtree_covering(&dom) else {
        return false;
    };
    p.subtree_free_vars(&t1) == dom && engine.hom_exists(&p.cq_of_subtree(&t1), db, h)
}

/// UWDPT subsumption `φ ⊑ φ'`: for every disjunct `p` of `φ` and every
/// rooted subtree `T₁` of `p`, the frozen identity on `T₁`'s free variables
/// must be a partial answer of `φ'` over the canonical database of
/// `q_{T₁}`.
pub fn uwdpt_subsumed(phi: &Uwdpt, phi2: &Uwdpt, engine: Engine, interner: &mut Interner) -> bool {
    let _span = wdpt_obs::span!("approx.uwdpt.subsumed");
    for p in &phi.disjuncts {
        let mut subtrees = Vec::new();
        p.for_each_rooted_subtree(&mut |t| subtrees.push(t.clone()));
        for t1 in subtrees {
            let q = p.cq_of_subtree(&t1);
            let (db, table) = freeze(&q, interner);
            let free_vars = p.subtree_free_vars(&t1);
            let h = Mapping::from_pairs(free_vars.iter().map(|&x| (x, table[&x])));
            if !phi2.partial_eval_decide(&db, &h, engine) {
                return false;
            }
        }
    }
    true
}

/// UWDPT subsumption-equivalence `φ ≡ₛ φ'`.
pub fn uwdpt_equivalent(
    phi: &Uwdpt,
    phi2: &Uwdpt,
    engine: Engine,
    interner: &mut Interner,
) -> bool {
    uwdpt_subsumed(phi, phi2, engine, interner) && uwdpt_subsumed(phi2, phi, engine, interner)
}

/// The translation `φ_cq`: for every disjunct `p` and every rooted subtree
/// `T'`, the projected CQ `r_{T'}` (head = free variables occurring in
/// `T'`). Satisfies `φ ≡ₛ φ_cq` (Section 6).
pub fn phi_cq(phi: &Uwdpt) -> Vec<ConjunctiveQuery> {
    let mut out: std::collections::BTreeSet<ConjunctiveQuery> = Default::default();
    for p in &phi.disjuncts {
        p.for_each_rooted_subtree(&mut |t| {
            out.insert(p.projected_cq_of_subtree(t));
        });
    }
    out.into_iter().collect()
}

/// The reduced union `φ_cq^r`: `φ_cq` with every CQ removed that is
/// classically contained in a different one (Theorem 17's preprocessing).
pub fn reduced_phi_cq(phi: &Uwdpt, interner: &mut Interner) -> Vec<ConjunctiveQuery> {
    let cqs = phi_cq(phi);
    let mut kept: Vec<ConjunctiveQuery> = Vec::new();
    'outer: for (i, q) in cqs.iter().enumerate() {
        for (j, other) in cqs.iter().enumerate() {
            if i != j && contained_in(q, other, interner) {
                // Break ties (mutual containment): the later index survives.
                if !(j < i && contained_in(other, q, interner)) {
                    continue 'outer;
                }
            }
        }
        kept.push(q.clone());
    }
    kept
}

/// Exact membership in `M(UWB(k))` (Proposition 9 / Theorem 17): every CQ
/// of the reduced `φ_cq` must be equivalent to a CQ in `C(k)` — decided
/// through cores.
pub fn in_m_uwb(phi: &Uwdpt, kind: WidthKind, k: usize, interner: &mut Interner) -> bool {
    reduced_phi_cq(phi, interner)
        .iter()
        .all(|q| semantically_in(q, kind, k, interner))
}

/// Theorem 17(2): when `φ ∈ M(UWB(k))`, produce the witness union — the
/// cores of the reduced `φ_cq`, each a polynomial-size single-node WDPT in
/// `WB(k)`. Returns `None` when `φ ∉ M(UWB(k))`.
pub fn uwb_equivalent_union(
    phi: &Uwdpt,
    kind: WidthKind,
    k: usize,
    interner: &mut Interner,
) -> Option<Uwdpt> {
    let reduced = reduced_phi_cq(phi, interner);
    let mut disjuncts = Vec::with_capacity(reduced.len());
    for q in &reduced {
        if !semantically_in(q, kind, k, interner) {
            return None;
        }
        disjuncts.push(Wdpt::from_cq(&core_of(q, interner)));
    }
    Some(Uwdpt::new(disjuncts))
}

/// Theorem 18: the unique (up to ≡ₛ) `UWB(k)`-approximation of `φ` — the
/// union of the `C(k)`-approximations of the CQs in `φ_cq`, pruned by
/// CQ-subsumption. Exact and single-exponential.
pub fn uwb_approximation(phi: &Uwdpt, kind: WidthKind, k: usize, interner: &mut Interner) -> Uwdpt {
    let _span = wdpt_obs::span!("approx.uwdpt.uwb_approximation");
    let mut pool: Vec<ConjunctiveQuery> = Vec::new();
    for q in reduced_phi_cq(phi, interner) {
        pool.extend(cq_approximations(&q, kind, k, interner));
    }
    // Prune CQs whose answers are always extended by another CQ's answers.
    let mut kept: Vec<ConjunctiveQuery> = Vec::new();
    'outer: for (i, q) in pool.iter().enumerate() {
        for (j, other) in pool.iter().enumerate() {
            if i == j {
                continue;
            }
            if subsumed_cq(q, other, interner) {
                if j < i && subsumed_cq(other, q, interner) {
                    continue; // mutual: keep the earlier only
                }
                continue 'outer;
            }
        }
        kept.push(q.clone());
    }
    Uwdpt::new(kept.iter().map(Wdpt::from_cq).collect())
}

/// The `UWB(k)`-APPROXIMATION decision problem (Proposition 10): is `φ'` a
/// `UWB(k)`-approximation of `φ`? Checks `φ' ⊑ φ` and
/// `approx(φ) ⊑ φ'`.
pub fn is_uwb_approximation(
    phi2: &Uwdpt,
    phi: &Uwdpt,
    kind: WidthKind,
    k: usize,
    interner: &mut Interner,
) -> bool {
    if !uwdpt_subsumed(phi2, phi, Engine::Backtrack, interner) {
        return false;
    }
    let reference = uwb_approximation(phi, kind, k, interner);
    uwdpt_subsumed(&reference, phi2, Engine::Backtrack, interner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdpt_core::WdptBuilder;
    use wdpt_model::parse::{parse_atoms, parse_database, parse_mapping};

    fn figure1_projected(i: &mut Interner) -> Wdpt {
        let root = parse_atoms(i, r#"rec_by(?x,?y) publ(?x,"after_2010")"#).unwrap();
        let mut b = WdptBuilder::new(root);
        b.child(0, parse_atoms(i, "nme_rating(?x,?z)").unwrap());
        b.child(0, parse_atoms(i, "formed_in(?y,?z2)").unwrap());
        // Example 8 projection: {y, z, z2}.
        let free = ["y", "z", "z2"].iter().map(|n| i.var(n)).collect();
        b.build(free).unwrap()
    }

    #[test]
    fn example8_phi_cq() {
        // Example 8: φ_cq of the projected Figure 1 tree is the union of
        // exactly four CQs with heads (y), (y,z), (y,z2), (y,z,z2).
        let mut i = Interner::new();
        let phi = Uwdpt::singleton(figure1_projected(&mut i));
        let cqs = phi_cq(&phi);
        assert_eq!(cqs.len(), 4);
        let mut head_sizes: Vec<usize> = cqs.iter().map(|q| q.head().len()).collect();
        head_sizes.sort_unstable();
        assert_eq!(head_sizes, vec![1, 2, 2, 3]);
        let y = i.var("y");
        for q in &cqs {
            assert!(q.head().contains(&y));
        }
    }

    #[test]
    fn phi_is_equivalent_to_phi_cq() {
        // φ ≡ₛ φ_cq (Section 6) — checked semantically and on data.
        let mut i = Interner::new();
        let phi = Uwdpt::singleton(figure1_projected(&mut i));
        let as_union = Uwdpt::new(phi_cq(&phi).iter().map(Wdpt::from_cq).collect());
        assert!(uwdpt_equivalent(&phi, &as_union, Engine::Backtrack, &mut i));
        let db = parse_database(
            &mut i,
            r#"rec_by("Swim","Caribou") publ("Swim","after_2010") nme_rating("Swim","2")"#,
        )
        .unwrap();
        assert_eq!(phi.evaluate_max(&db), as_union.evaluate_max(&db));
    }

    #[test]
    fn union_evaluation_is_union_of_answers() {
        let mut i = Interner::new();
        let p1 = WdptBuilder::new(parse_atoms(&mut i, "a(?x)").unwrap())
            .build(vec![i.var("x")])
            .unwrap();
        let p2 = WdptBuilder::new(parse_atoms(&mut i, "b(?y)").unwrap())
            .build(vec![i.var("y")])
            .unwrap();
        let phi = Uwdpt::new(vec![p1, p2]);
        let db = parse_database(&mut i, "a(1) b(2)").unwrap();
        let ans = phi.evaluate(&db);
        assert_eq!(ans.len(), 2);
        let hx = parse_mapping(&mut i, "?x -> 1").unwrap();
        let hy = parse_mapping(&mut i, "?y -> 2").unwrap();
        assert!(phi.eval_decide(&db, &hx));
        assert!(phi.eval_decide(&db, &hy));
        assert!(phi.partial_eval_decide(&db, &Mapping::empty(), Engine::Backtrack));
    }

    #[test]
    fn union_max_eval_respects_cross_disjunct_extension() {
        let mut i = Interner::new();
        // p1 answers {x}; p2 answers {x, y} ⊒. Then {x↦1} is in φ(D) but
        // not maximal when p2 extends it.
        let p1 = WdptBuilder::new(parse_atoms(&mut i, "a(?x)").unwrap())
            .build(vec![i.var("x")])
            .unwrap();
        let p2 = WdptBuilder::new(parse_atoms(&mut i, "a(?x) b(?x,?y)").unwrap())
            .build(vec![i.var("x"), i.var("y")])
            .unwrap();
        let phi = Uwdpt::new(vec![p1, p2]);
        let db = parse_database(&mut i, "a(1) b(1,2)").unwrap();
        let hx = parse_mapping(&mut i, "?x -> 1").unwrap();
        let hxy = parse_mapping(&mut i, "?x -> 1, ?y -> 2").unwrap();
        assert!(phi.eval_decide(&db, &hx));
        assert!(!phi.max_eval_decide(&db, &hx, Engine::Backtrack));
        assert!(phi.max_eval_decide(&db, &hxy, Engine::Backtrack));
        let max = phi.evaluate_max(&db);
        assert_eq!(max, vec![hxy]);
    }

    #[test]
    fn reduced_phi_cq_drops_contained_cqs() {
        let mut i = Interner::new();
        // Two single-node disjuncts with the same head where one is
        // contained in the other.
        let strong = WdptBuilder::new(parse_atoms(&mut i, "e(?x,?y) e(?y,?w)").unwrap())
            .build(vec![i.var("x")])
            .unwrap();
        let weak = WdptBuilder::new(parse_atoms(&mut i, "e(?x,?z)").unwrap())
            .build(vec![i.var("x")])
            .unwrap();
        let phi = Uwdpt::new(vec![strong, weak]);
        let reduced = reduced_phi_cq(&phi, &mut i);
        assert_eq!(reduced.len(), 1);
        assert_eq!(reduced[0].body().len(), 1);
    }

    #[test]
    fn membership_in_m_uwb() {
        let mut i = Interner::new();
        // A triangle that folds (has a loop atom) is in M(UWB(1)).
        let foldable = WdptBuilder::new(
            parse_atoms(&mut i, "e(?x,?y) e(?y,?z) e(?z,?x) e(?w,?w) e(?x,?w)").unwrap(),
        )
        .build(vec![])
        .unwrap();
        let phi = Uwdpt::singleton(foldable);
        assert!(in_m_uwb(&phi, WidthKind::Tw, 1, &mut i));
        let witness = uwb_equivalent_union(&phi, WidthKind::Tw, 1, &mut i).unwrap();
        assert!(uwdpt_equivalent(&phi, &witness, Engine::Backtrack, &mut i));
        // A genuine triangle is not.
        let tri = WdptBuilder::new(parse_atoms(&mut i, "e(?x,?y) e(?y,?z) e(?z,?x)").unwrap())
            .build(vec![])
            .unwrap();
        assert!(!in_m_uwb(&Uwdpt::singleton(tri), WidthKind::Tw, 1, &mut i));
    }

    #[test]
    fn uwb_approximation_is_sound_and_accepted() {
        let mut i = Interner::new();
        let tri = WdptBuilder::new(parse_atoms(&mut i, "e(?x,?y) e(?y,?z) e(?z,?x)").unwrap())
            .build(vec![])
            .unwrap();
        let phi = Uwdpt::singleton(tri);
        let approx = uwb_approximation(&phi, WidthKind::Tw, 1, &mut i);
        assert!(uwdpt_subsumed(&approx, &phi, Engine::Backtrack, &mut i));
        assert!(is_uwb_approximation(
            &approx,
            &phi,
            WidthKind::Tw,
            1,
            &mut i
        ));
        // The original φ is NOT its own UWB(1)-approximation (not in the
        // class and not subsumed-equal)… the checker only requires φ' ⊑ φ
        // and approx ⊑ φ'; φ itself satisfies both, but is outside UWB(1).
        // The class membership is the caller's precondition, as in
        // Proposition 10's problem statement.
    }

    #[test]
    fn approximation_of_tractable_union_is_equivalent() {
        let mut i = Interner::new();
        let path = WdptBuilder::new(parse_atoms(&mut i, "e(?x,?y) e(?y,?z)").unwrap())
            .build(vec![i.var("x")])
            .unwrap();
        let phi = Uwdpt::singleton(path);
        let approx = uwb_approximation(&phi, WidthKind::Tw, 1, &mut i);
        assert!(uwdpt_equivalent(&phi, &approx, Engine::Backtrack, &mut i));
    }
}
