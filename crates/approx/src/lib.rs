//! # wdpt-approx — semantic optimization and approximation of WDPTs
//!
//! Sections 5 and 6 of Barceló & Pichler (PODS 2015):
//!
//! * [`cq_approx`] — the CQ-level substrate (re-implementation of the
//!   Barceló–Libkin–Romero machinery, the paper's [4]): semantic
//!   `C(k)`-membership of CQs via cores, and `C(k)`-approximations via
//!   ⊆-maximal quotients.
//! * [`wb`] — the well-behaved classes `WB(k)` for single WDPTs: the exact
//!   certificate checkers behind Theorem 13 (membership in `M(WB(k))`) and
//!   Definition 4 / Theorem 14 (`WB(k)`-approximation), plus a bounded
//!   search over the pruning/quotient candidate space.
//! * [`figure2`] — the explicit family `(p₁⁽ⁿ⁾, p₂⁽ⁿ⁾)` of Figure 2
//!   witnessing the exponential lower bound on approximation size
//!   (Theorem 15).
//! * [`uwdpt`] — unions of WDPTs (Section 6): `φ_cq`, the reduced union,
//!   exact `M(UWB(k))` membership (Proposition 9 / Theorem 17), and exact
//!   `UWB(k)`-approximations (Theorem 18 / Proposition 10).

pub mod cq_approx;
pub mod figure2;
pub mod uwdpt;
pub mod wb;

pub use cq_approx::{cq_approximations, semantically_in};
pub use figure2::{figure2_p1, figure2_p2};
pub use uwdpt::{phi_cq, reduced_phi_cq, Uwdpt};
pub use wb::{find_wb_equivalent, is_wb_approximation_witness, wb_approximations};
