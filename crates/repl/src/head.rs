//! The served chain position, shared between the apply path and
//! `min_head` admission.
//!
//! Hashes carry no order, so "head ≥ H" cannot be a numeric comparison;
//! the order *is* the chain. [`ReplHead`] therefore remembers every hash
//! the served database has ever passed through (the history), and
//! `min_head: H` is satisfied exactly when `H` is in that history — the
//! serving state is then at `H` or a descendant of it. A condition
//! variable lets admission block until the follower's apply loop catches
//! up or the request deadline passes.

use std::collections::HashSet;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

#[derive(Debug, Default)]
struct HeadState {
    /// The current chain, base first. Empty until a chain position is
    /// known (a server that loaded plain text has no chain identity).
    chain: Vec<u64>,
    /// Every hash ever on the served chain, for `min_head` membership.
    known: HashSet<u64>,
}

/// Tracks the chain-head hash of the served database; see module docs.
#[derive(Debug, Default)]
pub struct ReplHead {
    state: Mutex<HeadState>,
    advanced: Condvar,
}

impl ReplHead {
    /// A head with no chain identity yet.
    pub fn new() -> ReplHead {
        ReplHead::default()
    }

    /// The current head hash, if a chain position is known.
    pub fn head(&self) -> Option<u64> {
        self.state.lock().expect("head lock").chain.last().copied()
    }

    /// Number of chain positions served so far (base counts as one).
    pub fn chain_len(&self) -> usize {
        self.state.lock().expect("head lock").chain.len()
    }

    /// Whether `hash` is on (or behind) the served chain — the `min_head`
    /// admission predicate.
    pub fn contains(&self, hash: u64) -> bool {
        self.state.lock().expect("head lock").known.contains(&hash)
    }

    /// Whether `hash` is a position on the *current* chain — the
    /// duplicate-frame predicate. Distinct from [`contains`]: after a
    /// re-bootstrap the history still knows hashes the freshly installed
    /// chain has not reached yet, and replayed deltas for those must be
    /// applied, not dropped as duplicates.
    ///
    /// [`contains`]: ReplHead::contains
    pub fn on_chain(&self, hash: u64) -> bool {
        self.state.lock().expect("head lock").chain.contains(&hash)
    }

    /// Replaces the chain wholesale (a reload or bootstrap installed the
    /// state described by `chain`, base first). History is retained: every
    /// hash ever served stays valid for `min_head`.
    pub fn install_chain(&self, chain: &[u64]) {
        let mut s = self.state.lock().expect("head lock");
        s.known.extend(chain.iter().copied());
        s.chain = chain.to_vec();
        drop(s);
        self.advanced.notify_all();
    }

    /// Extends the chain by one applied delta.
    pub fn advance(&self, hash: u64) {
        let mut s = self.state.lock().expect("head lock");
        s.chain.push(hash);
        s.known.insert(hash);
        drop(s);
        self.advanced.notify_all();
    }

    /// Blocks until `hash` is on the served chain or `deadline` passes;
    /// returns whether it arrived.
    pub fn wait_contains(&self, hash: u64, deadline: Instant) -> bool {
        let mut s = self.state.lock().expect("head lock");
        loop {
            if s.known.contains(&hash) {
                return true;
            }
            let now = Instant::now();
            let Some(left) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return false;
            };
            let (guard, timeout) = self.advanced.wait_timeout(s, left).expect("head lock");
            s = guard;
            if timeout.timed_out() {
                return s.known.contains(&hash);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn history_is_membership_not_ordering() {
        let head = ReplHead::new();
        assert_eq!(head.head(), None);
        assert!(!head.contains(1));
        head.install_chain(&[10, 20]);
        assert_eq!(head.head(), Some(20));
        assert!(head.contains(10) && head.contains(20));
        head.advance(5); // numerically smaller, chain-later
        assert_eq!(head.head(), Some(5));
        assert!(head.contains(20), "history survives advancing");
        // A reload that reinstalls from the base keeps old hashes known.
        head.install_chain(&[10, 20, 5, 99]);
        assert!(head.contains(5));
        assert_eq!(head.head(), Some(99));
    }

    /// `on_chain` (duplicate suppression) is current-chain membership;
    /// `contains` (min_head admission) is full-history membership. After a
    /// re-bootstrap the two disagree, and that gap is what lets a replay
    /// re-apply deltas the history already knows.
    #[test]
    fn on_chain_is_narrower_than_contains_after_rebootstrap() {
        let head = ReplHead::new();
        head.install_chain(&[10]);
        head.advance(20);
        head.advance(30);
        assert!(head.on_chain(20) && head.on_chain(30));
        // Re-bootstrap from the base: chain resets, history does not.
        head.install_chain(&[10]);
        assert!(head.contains(30), "history survives the re-bootstrap");
        assert!(!head.on_chain(30), "but 30 is not on the current chain");
        head.advance(20);
        head.advance(30);
        assert_eq!(head.head(), Some(30));
    }

    #[test]
    fn wait_contains_blocks_until_advance_or_deadline() {
        let head = Arc::new(ReplHead::new());
        head.install_chain(&[1]);
        // Already-known: returns immediately.
        assert!(head.wait_contains(1, Instant::now()));
        // Never arrives: returns false at the deadline.
        let t0 = Instant::now();
        assert!(!head.wait_contains(77, Instant::now() + Duration::from_millis(50)));
        assert!(t0.elapsed() >= Duration::from_millis(50));
        // Arrives mid-wait: returns true promptly.
        let waiter = {
            let head = Arc::clone(&head);
            std::thread::spawn(move || {
                head.wait_contains(42, Instant::now() + Duration::from_secs(10))
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        head.advance(42);
        let t1 = Instant::now();
        assert!(waiter.join().unwrap());
        assert!(t1.elapsed() < Duration::from_secs(5));
    }
}
