//! The primary's side of replication: the durable log plus the live
//! broadcast fan-out to subscribed followers.

use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use wdpt_obs::{counter, gauge};
use wdpt_store::{ReplLog, StoreError};

/// One delta pushed to subscribers. `bytes` is shared: a broadcast to N
/// followers clones the [`Arc`], not the payload.
#[derive(Debug)]
pub struct DeltaBroadcast {
    /// Chain head after applying (content hash of `bytes`).
    pub hash: u64,
    /// Chain position this delta extends.
    pub base_hash: u64,
    /// The delta file bytes.
    pub bytes: Arc<Vec<u8>>,
}

/// What a fresh subscriber must be sent before live frames: either the
/// suffix of deltas past its declared head, or (when its head is unknown
/// to this chain) the base snapshot plus every delta.
pub enum SubscribeStart {
    /// The subscriber's head is on the chain; replay exactly this tail.
    Suffix(Vec<DeltaBroadcast>),
    /// Unknown head: full bootstrap. `snapshot` re-hashes to `head`.
    Bootstrap {
        /// Chain position of the base snapshot.
        head: u64,
        /// The base snapshot bytes.
        snapshot: Arc<Vec<u8>>,
        /// Every delta on the chain, in order.
        replay: Vec<DeltaBroadcast>,
    },
}

/// The primary hub: owns the [`ReplLog`] and the subscriber registry.
///
/// Locking: `log` is the outer lock, `subs` the inner — `publish` holds
/// both briefly, `subscribe` takes both so that no broadcast can fall
/// between "compute the replay suffix" and "register the sender" (a
/// duplicate frame is possible instead, and followers drop duplicates by
/// hash).
pub struct Primary {
    log: Mutex<ReplLog>,
    subs: Mutex<Vec<Sender<Arc<DeltaBroadcast>>>>,
}

impl Primary {
    /// Wraps an opened log.
    pub fn new(log: ReplLog) -> Arc<Primary> {
        Arc::new(Primary {
            log: Mutex::new(log),
            subs: Mutex::new(Vec::new()),
        })
    }

    /// The current chain head.
    pub fn head(&self) -> u64 {
        self.log.lock().expect("repl log lock").head()
    }

    /// Every hash on the chain, base first.
    pub fn chain(&self) -> Vec<u64> {
        self.log.lock().expect("repl log lock").chain()
    }

    /// Number of currently registered subscribers (senders that have not
    /// yet been observed dead).
    pub fn subscriber_count(&self) -> usize {
        self.subs.lock().expect("repl subs lock").len()
    }

    /// Registers a subscriber whose last known chain position is `base`
    /// (`None` for a fresh follower), returning the replay it must be sent
    /// first and the channel live broadcasts will arrive on.
    pub fn subscribe(
        &self,
        base: Option<u64>,
    ) -> Result<(SubscribeStart, Receiver<Arc<DeltaBroadcast>>), StoreError> {
        let log = self.log.lock().expect("repl log lock");
        let read_all =
            |entries: &[wdpt_store::LogEntry]| -> Result<Vec<DeltaBroadcast>, StoreError> {
                entries
                    .iter()
                    .map(|e| {
                        Ok(DeltaBroadcast {
                            hash: e.hash,
                            base_hash: e.base_hash,
                            bytes: Arc::new(log.read_delta(e)?),
                        })
                    })
                    .collect()
            };
        let start = match base.and_then(|b| log.suffix_from(b)) {
            Some(suffix) => {
                counter!("repl.primary.subscribe_suffix").add(1);
                SubscribeStart::Suffix(read_all(suffix)?)
            }
            None => {
                counter!("repl.primary.subscribe_bootstrap").add(1);
                SubscribeStart::Bootstrap {
                    head: log.base_hash(),
                    snapshot: Arc::new(log.read_base()?),
                    replay: read_all(log.entries())?,
                }
            }
        };
        let (tx, rx) = mpsc::channel();
        let mut subs = self.subs.lock().expect("repl subs lock");
        subs.push(tx);
        gauge!("repl.primary.subscribers").set(subs.len() as i64);
        Ok((start, rx))
    }

    /// Accepts one delta: appends it to the durable log (verifying it
    /// chains onto the head) and broadcasts it to every live subscriber.
    /// Returns the new head.
    pub fn publish(&self, delta_bytes: Vec<u8>) -> Result<u64, StoreError> {
        let mut log = self.log.lock().expect("repl log lock");
        let entry = log.append(&delta_bytes)?;
        let broadcast = Arc::new(DeltaBroadcast {
            hash: entry.hash,
            base_hash: entry.base_hash,
            bytes: Arc::new(delta_bytes),
        });
        let head = entry.hash;
        let mut subs = self.subs.lock().expect("repl subs lock");
        subs.retain(|tx| tx.send(Arc::clone(&broadcast)).is_ok());
        gauge!("repl.primary.subscribers").set(subs.len() as i64);
        counter!("repl.primary.broadcasts").add(1);
        Ok(head)
    }

    /// Whether `hash` is already a position on the chain (used by the
    /// serving layer to skip re-publishing deltas it already accepted).
    pub fn knows(&self, hash: u64) -> bool {
        let log = self.log.lock().expect("repl log lock");
        log.base_hash() == hash || log.entries().iter().any(|e| e.hash == hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use wdpt_store::content_hash;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wdpt-hub-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    // Building real delta bytes needs wdpt-model fixtures, which live in
    // wdpt-store's own tests; here a bootstrap-only log exercises the
    // subscription paths that don't append.
    #[test]
    fn fresh_subscriber_bootstraps_and_current_one_gets_empty_suffix() {
        let dir = temp_dir("sub");
        let base = b"pretend snapshot".to_vec();
        // ReplLog::open_or_init hashes but does not decode the base.
        let log = ReplLog::open_or_init(&dir, &base).unwrap();
        let primary = Primary::new(log);
        let base_hash = content_hash(&base);
        assert_eq!(primary.head(), base_hash);
        assert_eq!(primary.chain(), vec![base_hash]);
        assert!(primary.knows(base_hash));
        assert!(!primary.knows(0x1234));

        let (start, _rx) = primary.subscribe(None).unwrap();
        match start {
            SubscribeStart::Bootstrap {
                head,
                snapshot,
                replay,
            } => {
                assert_eq!(head, base_hash);
                assert_eq!(*snapshot, base);
                assert!(replay.is_empty());
            }
            SubscribeStart::Suffix(_) => panic!("fresh follower must bootstrap"),
        }

        let (start, _rx2) = primary.subscribe(Some(base_hash)).unwrap();
        match start {
            SubscribeStart::Suffix(replay) => assert!(replay.is_empty()),
            SubscribeStart::Bootstrap { .. } => panic!("current follower must get a suffix"),
        }
        assert_eq!(primary.subscriber_count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
