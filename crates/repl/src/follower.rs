//! The follower loop: subscribe, verify, apply, reconnect.
//!
//! A follower is a read replica that keeps itself current by holding one
//! outbound connection to the primary. Everything database-shaped is
//! behind the [`ReplApply`] trait — the serving layer implements it over
//! its hot-reload path — so this loop is pure bytes-and-sockets and can be
//! tested against a scripted primary.
//!
//! Failure policy: *any* stream problem (connect refused, read error,
//! malformed frame, hash mismatch, apply failure) tears the connection
//! down and reconnects with jittered exponential backoff, resubscribing
//! from the follower's *current* head — which by construction requests
//! exactly the missing suffix, or a fresh bootstrap if the follower
//! diverged. Duplicate frames (possible around the subscribe race) are
//! dropped by hash before applying.

use crate::frames::{subscribe_request, Frame};
use std::io::{BufRead, BufReader, BufWriter};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use wdpt_obs::{counter, write_json_line, Json};

/// What the serving layer must provide for a follower to apply the
/// replication stream. All methods may be called from the follower thread
/// only, but must tolerate concurrent readers of the served state.
pub trait ReplApply {
    /// The chain position currently served, if any. Sent as the
    /// subscription base; `None` forces a bootstrap.
    fn current_head(&self) -> Option<u64>;

    /// Whether `head` was already applied (duplicate-frame suppression).
    fn known(&self, head: u64) -> bool;

    /// Installs a full snapshot whose content hash is `head`.
    fn apply_snapshot(&self, head: u64, bytes: &[u8]) -> Result<(), String>;

    /// Applies one delta chaining `base` → `head`.
    fn apply_delta(&self, head: u64, base: u64, bytes: &[u8]) -> Result<(), String>;
}

/// Tunables of the reconnect loop.
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// Primary address (`host:port`).
    pub primary: String,
    /// First reconnect delay; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Upper bound on the reconnect delay.
    pub backoff_cap: Duration,
    /// Socket read timeout — also the granularity at which the loop
    /// notices the stop flag.
    pub read_timeout: Duration,
    /// Seed for the deterministic backoff jitter (a follower id).
    pub jitter_seed: u64,
}

impl FollowerConfig {
    /// Defaults for `primary`: 100 ms base, 5 s cap, 500 ms read timeout.
    pub fn new(primary: impl Into<String>) -> FollowerConfig {
        FollowerConfig {
            primary: primary.into(),
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            read_timeout: Duration::from_millis(500),
            jitter_seed: 0,
        }
    }
}

/// The reconnect delay before attempt `attempt` (0-based): exponential
/// from the base with a deterministic jitter in the upper half, so a fleet
/// of followers restarting together does not reconnect in lockstep but a
/// given follower's schedule is reproducible.
pub fn backoff_delay(cfg: &FollowerConfig, attempt: u32, seed: u64) -> Duration {
    let base_ms = cfg.backoff_base.as_millis().max(1) as u64;
    let cap_ms = cfg.backoff_cap.as_millis().max(1) as u64;
    let exp_ms = base_ms.saturating_mul(1u64 << attempt.min(16)).min(cap_ms);
    // Jitter in [exp/2, exp]: hash of (seed, attempt) for determinism.
    let mut key = [0u8; 12];
    key[..8].copy_from_slice(&seed.to_le_bytes());
    key[8..].copy_from_slice(&attempt.to_le_bytes());
    let jitter = wdpt_store::content_hash(&key) % (exp_ms / 2).max(1);
    Duration::from_millis(exp_ms / 2 + jitter)
}

/// Runs the follower until `stop` is set. Applies frames through `apply`;
/// on any stream failure sleeps the backoff schedule and resubscribes from
/// the current head. Never panics on stream content.
pub fn run_follower(cfg: &FollowerConfig, apply: &dyn ReplApply, stop: &AtomicBool) {
    let mut failures: u32 = 0;
    while !stop.load(Ordering::SeqCst) {
        match follow_once(cfg, apply, stop) {
            Ok(()) => return, // stop requested
            Err(reason) => {
                counter!("repl.follower.reconnects").add(1);
                let delay = backoff_delay(cfg, failures, cfg.jitter_seed);
                eprintln!(
                    "repl follower: stream to {} failed ({reason}); retrying in {delay:?}",
                    cfg.primary
                );
                failures = failures.saturating_add(1);
                // Sleep in stop-sized slices so shutdown stays prompt.
                let mut left = delay;
                while !left.is_zero() && !stop.load(Ordering::SeqCst) {
                    let tick = left.min(Duration::from_millis(50));
                    std::thread::sleep(tick);
                    left = left.saturating_sub(tick);
                }
            }
        }
    }
}

/// One connection lifetime: subscribe, then apply frames until the stream
/// breaks (`Err(reason)`) or `stop` is set (`Ok`). The first applied frame
/// resets the caller's failure counter implicitly by returning only on
/// error; sustained streams that later break restart the backoff schedule
/// from the caller's count — the caller resets on our signal via
/// `counter` telemetry rather than a return value, keeping this function's
/// contract simple.
fn follow_once(
    cfg: &FollowerConfig,
    apply: &dyn ReplApply,
    stop: &AtomicBool,
) -> Result<(), String> {
    let stream =
        TcpStream::connect(&cfg.primary).map_err(|e| format!("connect {}: {e}", cfg.primary))?;
    stream
        .set_read_timeout(Some(cfg.read_timeout))
        .map_err(|e| e.to_string())?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = BufWriter::new(stream);

    let base = apply.current_head();
    write_json_line(&mut writer, &subscribe_request(None, base))
        .and_then(|()| std::io::Write::flush(&mut writer))
        .map_err(|e| format!("send subscribe: {e}"))?;

    // Accumulate raw bytes across read timeouts: a timeout mid-line (large
    // hex frames span many packets) must not discard the partial prefix.
    let mut buf: Vec<u8> = Vec::new();
    // Replay deltas still owed from the handshake; live frames past the
    // replay must not drive the backlog gauge negative.
    let mut backlog: i64 = 0;
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => {
                return Err(if buf.is_empty() {
                    "primary closed the stream".to_string()
                } else {
                    "primary closed mid-frame".to_string()
                });
            }
            Ok(_) if !buf.ends_with(b"\n") => continue, // partial, keep reading
            Ok(_) => {
                let bytes = std::mem::take(&mut buf);
                let line = std::str::from_utf8(&bytes)
                    .map_err(|_| "frame is not UTF-8".to_string())?
                    .trim();
                if line.is_empty() {
                    continue;
                }
                let value = Json::parse(line).map_err(|e| format!("bad frame JSON: {e}"))?;
                handle_frame(&value, apply, &mut backlog)?;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(format!("read: {e}")),
        }
    }
}

fn handle_frame(value: &Json, apply: &dyn ReplApply, backlog: &mut i64) -> Result<(), String> {
    match Frame::from_json(value)? {
        Frame::Subscribed { mode, deltas, .. } => {
            if mode == "bootstrap" {
                counter!("repl.follower.bootstraps").add(1);
            }
            // The replay length is the follower's backlog at subscribe
            // time; each replay delta counts it back down. Live frames
            // past the replay leave the gauge at zero.
            *backlog = deltas as i64;
            wdpt_obs::gauge!("repl.follower.backlog_deltas").set(*backlog);
            Ok(())
        }
        Frame::Snapshot { head, data } => {
            if apply.known(head) {
                counter!("repl.follower.duplicates_dropped").add(1);
                return Ok(());
            }
            apply.apply_snapshot(head, &data)
        }
        Frame::Delta { head, base, data } => {
            if apply.known(head) {
                counter!("repl.follower.duplicates_dropped").add(1);
            } else {
                apply.apply_delta(head, base, &data)?;
            }
            // A replayed duplicate still retires backlog: it was counted
            // in the handshake's replay length.
            if *backlog > 0 {
                *backlog -= 1;
                wdpt_obs::gauge!("repl.follower.backlog_deltas").set(*backlog);
            }
            Ok(())
        }
        Frame::Closed { reason } => Err(reason),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::AtomicUsize;
    use std::sync::{Arc, Mutex};
    use wdpt_obs::read_json_line;

    #[test]
    fn backoff_is_exponential_capped_and_jittered() {
        let cfg = FollowerConfig::new("x");
        let d0 = backoff_delay(&cfg, 0, 1);
        let d3 = backoff_delay(&cfg, 3, 1);
        let d20 = backoff_delay(&cfg, 20, 1);
        assert!(d0 >= Duration::from_millis(50) && d0 <= Duration::from_millis(100));
        assert!(d3 >= Duration::from_millis(400) && d3 <= Duration::from_millis(800));
        assert!(d20 <= cfg.backoff_cap, "cap must hold: {d20:?}");
        // Deterministic per seed, spread across seeds.
        assert_eq!(backoff_delay(&cfg, 5, 7), backoff_delay(&cfg, 5, 7));
        let distinct: std::collections::BTreeSet<Duration> =
            (0..16).map(|s| backoff_delay(&cfg, 5, s)).collect();
        assert!(distinct.len() > 8, "jitter must spread followers");
    }

    /// A scripted apply target recording the calls it receives.
    #[derive(Default)]
    struct Recorder {
        head: Mutex<Option<u64>>,
        known: Mutex<std::collections::HashSet<u64>>,
        snapshots: AtomicUsize,
        deltas: AtomicUsize,
    }

    impl ReplApply for Recorder {
        fn current_head(&self) -> Option<u64> {
            *self.head.lock().unwrap()
        }
        fn known(&self, head: u64) -> bool {
            self.known.lock().unwrap().contains(&head)
        }
        fn apply_snapshot(&self, head: u64, _bytes: &[u8]) -> Result<(), String> {
            self.snapshots.fetch_add(1, Ordering::SeqCst);
            *self.head.lock().unwrap() = Some(head);
            self.known.lock().unwrap().insert(head);
            Ok(())
        }
        fn apply_delta(&self, head: u64, base: u64, _bytes: &[u8]) -> Result<(), String> {
            if self.current_head() != Some(base) {
                return Err(format!("delta base {base} does not match head"));
            }
            self.deltas.fetch_add(1, Ordering::SeqCst);
            *self.head.lock().unwrap() = Some(head);
            self.known.lock().unwrap().insert(head);
            Ok(())
        }
    }

    /// Follower against a hand-rolled primary: bootstrap, two deltas (one
    /// duplicated), then a clean stop.
    #[test]
    fn follower_applies_stream_and_drops_duplicates() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut r = BufReader::new(stream.try_clone().unwrap());
            let mut w = BufWriter::new(stream);
            let req = read_json_line(&mut r).unwrap().unwrap();
            assert_eq!(req.get("op").and_then(Json::as_str), Some("subscribe"));
            assert_eq!(req.get("base"), None, "fresh follower sends no base");

            let snap = b"snapshot bytes".to_vec();
            let d1 = b"delta one".to_vec();
            let d2 = b"delta two".to_vec();
            let (hs, h1, h2) = (
                wdpt_store::content_hash(&snap),
                wdpt_store::content_hash(&d1),
                wdpt_store::content_hash(&d2),
            );
            use crate::frames::{delta_frame, snapshot_frame, subscribed_line};
            for line in [
                subscribed_line(None, hs, "bootstrap", 0),
                snapshot_frame(hs, &snap),
                delta_frame(h1, hs, &d1),
                delta_frame(h1, hs, &d1), // duplicate
                delta_frame(h2, h1, &d2),
            ] {
                write_json_line(&mut w, &line).unwrap();
            }
            std::io::Write::flush(&mut w).unwrap();
            std::thread::sleep(Duration::from_millis(300));
        });

        let recorder = Arc::new(Recorder::default());
        let stop = Arc::new(AtomicBool::new(false));
        let fol = {
            let (rec, stop) = (Arc::clone(&recorder), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut cfg = FollowerConfig::new(addr);
                cfg.read_timeout = Duration::from_millis(50);
                run_follower(&cfg, &*rec, &stop);
            })
        };
        // Wait for the two unique deltas to land, then stop.
        let t0 = std::time::Instant::now();
        while recorder.deltas.load(Ordering::SeqCst) < 2 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, Ordering::SeqCst);
        fol.join().unwrap();
        server.join().unwrap();
        assert_eq!(recorder.snapshots.load(Ordering::SeqCst), 1);
        assert_eq!(
            recorder.deltas.load(Ordering::SeqCst),
            2,
            "duplicate applied"
        );
        assert_eq!(
            recorder.current_head(),
            Some(wdpt_store::content_hash(b"delta two"))
        );
    }

    /// A refused subscription (error line) or dead primary triggers the
    /// reconnect path; the follower keeps retrying until stopped and then
    /// exits promptly.
    #[test]
    fn follower_survives_refusal_and_stops_promptly() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let accepted = Arc::new(AtomicUsize::new(0));
        let server = {
            let accepted = Arc::clone(&accepted);
            std::thread::spawn(move || {
                listener.set_nonblocking(true).unwrap();
                let t0 = std::time::Instant::now();
                while t0.elapsed() < Duration::from_secs(3) {
                    if let Ok((stream, _)) = listener.accept() {
                        accepted.fetch_add(1, Ordering::SeqCst);
                        let mut w = BufWriter::new(stream);
                        let line = Json::obj([
                            ("status", Json::str("error")),
                            ("kind", Json::str("bad_request")),
                            ("message", Json::str("not a primary")),
                        ]);
                        write_json_line(&mut w, &line).unwrap();
                        std::io::Write::flush(&mut w).ok();
                        if accepted.load(Ordering::SeqCst) >= 2 {
                            return;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        };
        let recorder = Arc::new(Recorder::default());
        let stop = Arc::new(AtomicBool::new(false));
        let fol = {
            let (rec, stop) = (Arc::clone(&recorder), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut cfg = FollowerConfig::new(addr);
                cfg.read_timeout = Duration::from_millis(50);
                cfg.backoff_base = Duration::from_millis(20);
                cfg.backoff_cap = Duration::from_millis(80);
                run_follower(&cfg, &*rec, &stop);
            })
        };
        let t0 = std::time::Instant::now();
        while accepted.load(Ordering::SeqCst) < 2 && t0.elapsed() < Duration::from_secs(3) {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            accepted.load(Ordering::SeqCst) >= 2,
            "follower must reconnect after refusal"
        );
        stop.store(true, Ordering::SeqCst);
        let t1 = std::time::Instant::now();
        fol.join().unwrap();
        assert!(t1.elapsed() < Duration::from_secs(2), "stop must be prompt");
        server.join().unwrap();
        assert_eq!(recorder.snapshots.load(Ordering::SeqCst), 0);
    }
}
