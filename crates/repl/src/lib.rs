//! # wdpt-repl — primary/follower replication over the delta chain
//!
//! Scale-out reads for the query service: one **primary** accepts updates
//! (hot reloads), persists each accepted delta in an append-only
//! [`wdpt_store::ReplLog`], and streams the deltas to any number of
//! subscribed **followers** over the same newline-delimited JSON protocol
//! the query service already speaks. Every position on the chain is named
//! by the FNV-1a content hash of its tip file, so:
//!
//! * a follower subscribing with its current head receives **exactly the
//!   suffix** of deltas it is missing (or a full-snapshot bootstrap when
//!   its head is not on the primary's chain);
//! * the chain-head hash doubles as a **consistency token**: a client that
//!   saw the primary acknowledge head `H` can demand `min_head: H` from
//!   any follower and either be served at-or-after `H`, wait, or get a
//!   typed `stale_replica` error — read-your-writes across the fleet.
//!
//! The crate is deliberately below the serving layer: it knows bytes,
//! hashes, sockets, and the [`ReplApply`] trait — not databases or query
//! plans. `wdpt-serve` implements [`ReplApply`] on top of its hot-reload
//! path (plan cache kept, in-flight queries pinned to their database
//! version) and exposes the `subscribe` op and `--follow` flag.

pub mod follower;
pub mod frames;
pub mod head;
pub mod hub;

pub use follower::{backoff_delay, run_follower, FollowerConfig, ReplApply};
pub use frames::{decode_hex, encode_hex, Frame};
pub use head::ReplHead;
pub use hub::{DeltaBroadcast, Primary, SubscribeStart};
