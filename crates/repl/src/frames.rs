//! Wire frames of the replication stream.
//!
//! Replication rides the existing one-line-one-document JSON protocol.
//! A follower sends a single `subscribe` request and the connection then
//! inverts: the primary pushes frames for the life of the subscription.
//!
//! ```text
//! follower → primary   {"op":"subscribe","id":"f1","base":"<head hex>"}
//! primary  → follower  {"status":"ok","kind":"subscribed","head":H,"mode":"suffix"|"bootstrap","deltas":N}
//! primary  → follower  {"status":"snapshot","head":H,"bytes":N,"data":"<hex>"}     (bootstrap only)
//! primary  → follower  {"status":"delta","head":H,"base":B,"bytes":N,"data":"<hex>"}  (repeated)
//! ```
//!
//! `head` is always the chain position *after* applying the frame, `base`
//! the position it extends — both in the canonical
//! [`wdpt_store::head_hex`] form. Payload bytes travel hex-encoded: the
//! protocol is line-framed UTF-8 JSON, and hex keeps the codec
//! dependency-free and trivially verifiable (the follower re-hashes the
//! decoded bytes and compares against `head` before applying anything).
//!
//! Builders and the [`Frame`] parser live here — `wdpt-serve` uses the
//! builders, the follower the parser — so both ends share one grammar.

use wdpt_obs::Json;
use wdpt_store::{head_hex, parse_head_hex};

/// Encodes bytes as lowercase hex (two digits per byte).
pub fn encode_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        out.push(char::from_digit((b & 0xF) as u32, 16).expect("nibble"));
    }
    out
}

/// Decodes a hex string produced by [`encode_hex`] (either case).
pub fn decode_hex(text: &str) -> Result<Vec<u8>, String> {
    if !text.len().is_multiple_of(2) {
        return Err("hex payload has odd length".to_string());
    }
    let digit = |b: u8| -> Result<u8, String> {
        (b as char)
            .to_digit(16)
            .map(|d| d as u8)
            .ok_or_else(|| format!("invalid hex digit {:?}", b as char))
    };
    text.as_bytes()
        .chunks_exact(2)
        .map(|pair| Ok(digit(pair[0])? << 4 | digit(pair[1])?))
        .collect()
}

/// The follower's one request: subscribe from `base` (its current head),
/// or from nothing (fresh follower, forces a bootstrap).
pub fn subscribe_request(id: Option<&str>, base: Option<u64>) -> Json {
    let mut pairs = vec![("op".to_string(), Json::str("subscribe"))];
    if let Some(id) = id {
        pairs.push(("id".to_string(), Json::str(id)));
    }
    if let Some(base) = base {
        pairs.push(("base".to_string(), Json::str(head_hex(base))));
    }
    Json::Obj(pairs.into_iter().collect())
}

/// The handshake acknowledgment: the primary's head, whether the follower
/// gets a `suffix` replay or a full `bootstrap`, and how many delta frames
/// the replay holds (live frames follow indefinitely after it).
pub fn subscribed_line(id: Option<&str>, head: u64, mode: &str, deltas: usize) -> Json {
    Json::obj([
        ("status".to_string(), Json::str("ok")),
        ("kind".to_string(), Json::str("subscribed")),
        ("id".to_string(), id.map_or(Json::Null, Json::str)),
        ("head".to_string(), Json::str(head_hex(head))),
        ("mode".to_string(), Json::str(mode)),
        ("deltas".to_string(), Json::int(deltas as u64)),
    ])
}

/// A full-snapshot bootstrap frame. `head` is the content hash of `bytes`.
pub fn snapshot_frame(head: u64, bytes: &[u8]) -> Json {
    Json::obj([
        ("status".to_string(), Json::str("snapshot")),
        ("head".to_string(), Json::str(head_hex(head))),
        ("bytes".to_string(), Json::int(bytes.len() as u64)),
        ("data".to_string(), Json::str(encode_hex(bytes))),
    ])
}

/// One delta frame: `bytes` chains the position `base` to the position
/// `head` (its own content hash).
pub fn delta_frame(head: u64, base: u64, bytes: &[u8]) -> Json {
    Json::obj([
        ("status".to_string(), Json::str("delta")),
        ("head".to_string(), Json::str(head_hex(head))),
        ("base".to_string(), Json::str(head_hex(base))),
        ("bytes".to_string(), Json::int(bytes.len() as u64)),
        ("data".to_string(), Json::str(encode_hex(bytes))),
    ])
}

/// A parsed frame from the primary, as the follower sees it.
#[derive(Debug, PartialEq)]
pub enum Frame {
    /// Handshake acknowledgment. `deltas` is the replay length — the
    /// follower's initial backlog.
    Subscribed {
        head: u64,
        mode: String,
        deltas: u64,
    },
    /// Full-snapshot bootstrap; `data` re-hashes to `head`.
    Snapshot { head: u64, data: Vec<u8> },
    /// One delta; `data` re-hashes to `head` and chains onto `base`.
    Delta { head: u64, base: u64, data: Vec<u8> },
    /// The primary is going away (shutdown, or refused the subscription).
    Closed { reason: String },
}

impl Frame {
    /// Parses one pushed line. Unknown or malformed frames are errors —
    /// the follower treats them as a broken stream and reconnects.
    pub fn from_json(v: &Json) -> Result<Frame, String> {
        let status = v
            .get("status")
            .and_then(Json::as_str)
            .ok_or("frame has no status")?;
        let head_of = |v: &Json| -> Result<u64, String> {
            v.get("head")
                .and_then(Json::as_str)
                .and_then(parse_head_hex)
                .ok_or_else(|| "frame has no valid head".to_string())
        };
        let data_of = |v: &Json| -> Result<Vec<u8>, String> {
            let text = v
                .get("data")
                .and_then(Json::as_str)
                .ok_or("frame has no data")?;
            let data = decode_hex(text)?;
            if let Some(n) = v.get("bytes").and_then(Json::as_num) {
                if n as u64 != data.len() as u64 {
                    return Err(format!(
                        "frame claims {} bytes but carries {}",
                        n,
                        data.len()
                    ));
                }
            }
            Ok(data)
        };
        match status {
            "ok" if v.get("kind").and_then(Json::as_str) == Some("subscribed") => {
                let mode = v
                    .get("mode")
                    .and_then(Json::as_str)
                    .ok_or("subscribed frame has no mode")?
                    .to_string();
                let deltas = v.get("deltas").and_then(Json::as_num).unwrap_or(0.0) as u64;
                Ok(Frame::Subscribed {
                    head: head_of(v)?,
                    mode,
                    deltas,
                })
            }
            "snapshot" => {
                let head = head_of(v)?;
                let data = data_of(v)?;
                if wdpt_store::content_hash(&data) != head {
                    return Err("snapshot payload does not hash to its head".to_string());
                }
                Ok(Frame::Snapshot { head, data })
            }
            "delta" => {
                let head = head_of(v)?;
                let base = v
                    .get("base")
                    .and_then(Json::as_str)
                    .and_then(parse_head_hex)
                    .ok_or("delta frame has no valid base")?;
                let data = data_of(v)?;
                if wdpt_store::content_hash(&data) != head {
                    return Err("delta payload does not hash to its head".to_string());
                }
                Ok(Frame::Delta { head, base, data })
            }
            "shutting_down" => Ok(Frame::Closed {
                reason: "primary is shutting down".to_string(),
            }),
            "error" => {
                let message = v
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified");
                Ok(Frame::Closed {
                    reason: format!("primary refused: {message}"),
                })
            }
            other => Err(format!("unexpected frame status {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        for bytes in [&b""[..], &b"\x00"[..], &b"\xff\x00\x7f"[..], &b"hello"[..]] {
            assert_eq!(decode_hex(&encode_hex(bytes)).unwrap(), bytes);
        }
        assert!(decode_hex("abc").is_err());
        assert!(decode_hex("zz").is_err());
        assert_eq!(encode_hex(&[0xde, 0xad]), "dead");
    }

    #[test]
    fn frames_round_trip_through_json() {
        let payload = b"some delta bytes".to_vec();
        let head = wdpt_store::content_hash(&payload);
        let line = delta_frame(head, 42, &payload);
        assert_eq!(
            Frame::from_json(&line).unwrap(),
            Frame::Delta {
                head,
                base: 42,
                data: payload.clone()
            }
        );

        let snap = snapshot_frame(head, &payload);
        assert_eq!(
            Frame::from_json(&snap).unwrap(),
            Frame::Snapshot {
                head,
                data: payload
            }
        );

        let sub = subscribed_line(Some("f"), 7, "suffix", 3);
        assert_eq!(
            Frame::from_json(&sub).unwrap(),
            Frame::Subscribed {
                head: 7,
                mode: "suffix".to_string(),
                deltas: 3,
            }
        );
    }

    #[test]
    fn tampered_payload_is_rejected_before_apply() {
        let payload = b"some delta bytes".to_vec();
        let head = wdpt_store::content_hash(&payload);
        let mut tampered = payload.clone();
        tampered[0] ^= 1;
        let line = delta_frame(head, 42, &tampered);
        let err = Frame::from_json(&line).unwrap_err();
        assert!(err.contains("hash"), "{err}");

        // A byte-count mismatch is caught even before hashing.
        let mut wrong_len = delta_frame(head, 42, &payload);
        if let Json::Obj(m) = &mut wrong_len {
            m.insert("bytes".to_string(), Json::int(3));
        }
        assert!(Frame::from_json(&wrong_len).is_err());
    }

    #[test]
    fn subscribe_request_carries_optional_base() {
        let with = subscribe_request(Some("f1"), Some(0xabcd));
        assert_eq!(
            with.get("base").and_then(Json::as_str),
            Some("000000000000abcd")
        );
        let without = subscribe_request(None, None);
        assert_eq!(without.get("base"), None);
        assert_eq!(without.get("op").and_then(Json::as_str), Some("subscribe"));
    }
}
