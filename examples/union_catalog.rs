//! Unions of WDPTs end to end (Section 6): UNION queries over RDF, the
//! Lemma 1 normalizer, and the exact `UWB(k)` optimization pipeline.
//!
//! Run with: `cargo run --example union_catalog`

use wdpt::approx::uwdpt::{in_m_uwb, uwb_approximation, uwdpt_equivalent, Uwdpt};
use wdpt::core::{normalize, Engine, WidthKind};
use wdpt::sparql::{parse_union_query, TripleStore};
use wdpt::Interner;

fn main() {
    let mut i = Interner::new();

    // A catalog mixing albums and singles with optional metadata.
    let mut ts = TripleStore::new();
    for (s, p, o) in [
        ("Swim", "type", "album"),
        ("Swim", "rating", "9"),
        ("Our_love", "type", "album"),
        ("Odessa", "type", "single"),
        ("Odessa", "from_album", "Swim"),
    ] {
        ts.insert_str(&mut i, s, p, o);
    }

    // One query per record kind; singles optionally link to their album.
    let text = "(?x, type, album) OPT (?x, rating, ?r) \
                UNION (?x, type, single) OPT (?x, from_album, ?a)";
    let q = parse_union_query(&mut i, text).unwrap();
    let phi = Uwdpt::new(q.to_wdpts(&mut i).unwrap());
    println!("union query with {} branches", phi.disjuncts.len());

    let answers = phi.evaluate(ts.database());
    println!("\nφ(D) — {} answers:", answers.len());
    for a in &answers {
        println!("  {}", a.display(&i));
    }
    assert_eq!(answers.len(), 3);

    // The Lemma 1 normalizer on each disjunct (no-ops here, but shows the
    // API; on machine-generated trees it shrinks node counts).
    let normalized = Uwdpt::new(phi.disjuncts.iter().map(normalize).collect());
    assert!(uwdpt_equivalent(
        &phi,
        &normalized,
        Engine::Backtrack,
        &mut i
    ));
    println!(
        "\nnormalize(): verified ≡ₛ-preserving node counts {:?}",
        normalized
            .disjuncts
            .iter()
            .map(wdpt::core::Wdpt::node_count)
            .collect::<Vec<_>>()
    );

    // Semantic optimization: the union is already UWB(1)-equivalent (all
    // branches acyclic), and the exact Theorem 17/18 pipeline confirms it.
    assert!(in_m_uwb(&phi, WidthKind::Tw, 1, &mut i));
    let approx = uwb_approximation(&phi, WidthKind::Tw, 1, &mut i);
    println!(
        "\nUWB(1) pipeline: member of M(UWB(1)) ✓ — approximation has {} CQ disjuncts",
        approx.disjuncts.len()
    );
    assert!(uwdpt_equivalent(&phi, &approx, Engine::Backtrack, &mut i));
    println!("approximation is ≡ₛ-equivalent to the query (lossless) ✓");
    println!("\nunion_catalog: done ✓");
}
