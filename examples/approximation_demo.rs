//! Semantic optimization and approximation (Sections 5–6 of the paper).
//!
//! 1. A query that *looks* intractable but is semantically in `WB(1)`:
//!    membership search finds the equivalent tractable tree.
//! 2. A genuinely intractable query: its `UWB(1)`-approximation is
//!    computed, evaluated, and compared — sound answers, much cheaper.
//! 3. The Figure 2 family: the approximation that must be exponentially
//!    bigger than the query it approximates.
//!
//! Run with: `cargo run --release --example approximation_demo`

use std::time::Instant;
use wdpt::approx::figure2::{atom_count, figure2_p1, figure2_p2};
use wdpt::approx::uwdpt::{uwb_approximation, uwdpt_subsumed, Uwdpt};
use wdpt::approx::wb::find_wb_equivalent;
use wdpt::core::{evaluate, in_wb, subsumed, Engine, WdptBuilder, WidthKind};
use wdpt::gen::db::random_graph_db;
use wdpt::model::parse::parse_atoms;
use wdpt::Interner;

fn main() {
    let mut i = Interner::new();

    // --- 1. Semantic membership: a foldable "triangle". ------------------
    let p = WdptBuilder::new(
        parse_atoms(&mut i, "e(?x,?y) e(?y,?z) e(?z,?x) e(?w,?w) e(?x,?w)").unwrap(),
    )
    .build(vec![])
    .unwrap();
    println!("query 1: a triangle with an escape loop");
    println!("  syntactically in WB(1)? {}", in_wb(&p, WidthKind::Tw, 1));
    let witness = find_wb_equivalent(&p, WidthKind::Tw, 1, &mut i);
    match &witness {
        Some(w) => println!(
            "  semantically in M(WB(1)) ✓ — equivalent tractable tree:\n{}",
            w.display(&i)
        ),
        None => println!("  not in M(WB(1))"),
    }
    assert!(witness.is_some());

    // --- 2. Approximating a genuinely cyclic query. ----------------------
    let tri = WdptBuilder::new(parse_atoms(&mut i, "t(?a,?b) t(?b,?c) t(?c,?a)").unwrap())
        .build(vec![])
        .unwrap();
    println!("\nquery 2: a genuine triangle (not in M(WB(1)))");
    assert!(find_wb_equivalent(&tri, WidthKind::Tw, 1, &mut i).is_none());
    let phi = Uwdpt::singleton(tri.clone());
    let approx = uwb_approximation(&phi, WidthKind::Tw, 1, &mut i);
    println!(
        "  UWB(1)-approximation: union of {} tractable CQ(s)",
        approx.disjuncts.len()
    );
    for d in &approx.disjuncts {
        println!("{}", d.display(&i));
    }
    assert!(uwdpt_subsumed(&approx, &phi, Engine::Backtrack, &mut i));

    // Soundness on data: every approximation answer is extended by a real
    // answer (here both are Boolean: approx "true" ⇒ query "true" need NOT
    // hold — approximation is sound the other way: approx answers are
    // subsumed by query answers... for Boolean queries: approx true ⇒
    // query true, because the approximation is contained in the query).
    // Re-key the generated edges under the query's predicate `t`.
    let (db, _) = random_graph_db(&mut i, 30, 150, 5);
    let t = i.pred("t");
    let mut tdb = wdpt::Database::new();
    for (_, rel) in db.relations() {
        for tup in rel.tuples() {
            tdb.insert(t, tup.to_vec());
        }
    }
    let q_ans = !evaluate(&tri, &tdb).is_empty();
    let a_ans = !approx.evaluate(&tdb).is_empty();
    println!("  on a random graph: approximation says {a_ans}, query says {q_ans}");
    assert!(!a_ans || q_ans, "approximation must be sound");

    // --- 3. Figure 2: the forced exponential blow-up. ---------------------
    println!("\nFigure 2 family (k = 2): the approximation must be exponentially bigger");
    for n in 1..=8 {
        let mut fresh = Interner::new();
        let p1 = figure2_p1(&mut fresh, n, 2);
        let p2 = figure2_p2(&mut fresh, n, 2);
        println!(
            "  n = {n}: |p1| = {:4} atoms, |p2| = {:5} atoms",
            atom_count(&p1),
            atom_count(&p2)
        );
    }
    let mut fresh = Interner::new();
    let p1 = figure2_p1(&mut fresh, 3, 2);
    let p2 = figure2_p2(&mut fresh, 3, 2);
    let start = Instant::now();
    assert!(subsumed(&p2, &p1, Engine::Backtrack, &mut fresh));
    println!(
        "  verified p2 ⊑ p1 at n = 3 in {:.2?} (Theorem 15 premise)",
        start.elapsed()
    );
    println!("\napproximation_demo: done ✓");
}
