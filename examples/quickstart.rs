//! Quickstart: the paper's running example, end to end (Experiment E1).
//!
//! Parses query (1) of Example 1 in the {AND, OPT} algebra, converts it to
//! the Figure 1 well-designed pattern tree, evaluates it over the Example 2
//! RDF database, and reproduces Examples 2, 3, and 7.
//!
//! Run with: `cargo run --example quickstart`

use wdpt::core::{
    eval_bounded_interface, evaluate, evaluate_max, has_bounded_interface, is_locally_in, Engine,
    WidthKind,
};
use wdpt::sparql::{parse_query, TripleStore};
use wdpt::Interner;

fn main() {
    let mut interner = Interner::new();

    // --- Example 1: the query, in the paper's algebraic notation. -------
    let text = r#"(((?x, recorded_by, ?y) AND (?x, published, "after_2010"))
                    OPT (?x, NME_rating, ?z)) OPT (?y, formed_in, ?z2)"#;
    let query = parse_query(&mut interner, text).expect("query (1) parses");
    println!("Query (1): {}", query.pattern.display(&interner));
    assert!(query.pattern.is_well_designed());

    // --- Figure 1: its pattern-tree representation. ---------------------
    let p = query.to_wdpt(&mut interner).expect("well-designed");
    println!("\nFigure 1 WDPT:\n{}", p.display(&interner));

    // --- Example 2: the database and the two answers. --------------------
    let mut store = TripleStore::new();
    for (s, pr, o) in [
        ("Our_love", "recorded_by", "Caribou"),
        ("Our_love", "published", "after_2010"),
        ("Swim", "recorded_by", "Caribou"),
        ("Swim", "published", "after_2010"),
        ("Swim", "NME_rating", "2"),
    ] {
        store.insert_str(&mut interner, s, pr, o);
    }
    let answers = evaluate(&p, store.database());
    println!("Example 2 — p(D) has {} answers:", answers.len());
    for a in &answers {
        println!("  {}", a.display(&interner));
    }
    assert_eq!(answers.len(), 2);

    // --- Example 3: projection onto {y, z, z2}. --------------------------
    let projected = parse_query(
        &mut interner,
        &format!("SELECT ?y ?z ?z2 WHERE {{ {text} }}"),
    )
    .unwrap()
    .to_wdpt(&mut interner)
    .unwrap();
    let proj_answers = evaluate(&projected, store.database());
    println!("\nExample 3 — projecting out ?x:");
    for a in &proj_answers {
        println!("  {}", a.display(&interner));
    }

    // --- Example 7: maximal-mapping semantics over {y, z}. ---------------
    let yz = parse_query(&mut interner, &format!("SELECT ?y ?z WHERE {{ {text} }}"))
        .unwrap()
        .to_wdpt(&mut interner)
        .unwrap();
    let all = evaluate(&yz, store.database());
    let max = evaluate_max(&yz, store.database());
    println!(
        "\nExample 7 — p(D) has {} answers, p_m(D) keeps the ⊑-maximal {}:",
        all.len(),
        max.len()
    );
    for a in &max {
        println!("  {}", a.display(&interner));
    }
    assert_eq!(all.len(), 2);
    assert_eq!(max.len(), 1);

    // --- Example 6: tractable classes, and the Theorem 6 algorithm. ------
    assert!(is_locally_in(&p, WidthKind::Tw, 1));
    assert!(has_bounded_interface(&p, 2));
    println!("\nExample 6 — the tree is in ℓ-TW(1) ∩ BI(2): the LogCFL");
    println!("evaluation algorithm of Theorem 6 applies. Re-checking the answers:");
    for a in &answers {
        let ok = eval_bounded_interface(&p, store.database(), a, Engine::Tw(1));
        println!("  {} ∈ p(D): {ok}", a.display(&interner));
        assert!(ok);
    }
    println!("\nquickstart: all paper examples reproduced ✓");
}
