//! A realistic workload: the paper's music-catalog scenario at scale.
//!
//! Generates a catalog where ratings and formation years are only
//! sometimes present (the semistructured data that motivates optional
//! matching), runs the Figure 1 query, and contrasts the class-specific
//! evaluation algorithms on candidate answers.
//!
//! Run with: `cargo run --release --example music_catalog`

use std::time::Instant;
use wdpt::core::{
    eval_bounded_interface, eval_decide, evaluate, max_eval_decide, partial_eval_decide, Engine,
};
use wdpt::gen::music::{figure1_wdpt, music_catalog, MusicParams};
use wdpt::{Interner, Mapping};

fn main() {
    let mut interner = Interner::new();
    let params = MusicParams {
        bands: 300,
        records_per_band: 5,
        rating_probability: 0.4,
        formed_in_probability: 0.6,
        recent_fraction: 0.7,
        seed: 2026,
    };
    let db = music_catalog(&mut interner, params);
    println!(
        "catalog: {} tuples over {} relations ({} bands × {} records)",
        db.size(),
        db.predicate_count(),
        params.bands,
        params.records_per_band
    );

    let p = figure1_wdpt(&mut interner);
    println!("\nquery: the Figure 1 WDPT (recent records, optional rating & formation year)");

    // Full evaluation (answers are one per recent record).
    let start = Instant::now();
    let answers = evaluate(&p, &db);
    println!("p(D): {} answers in {:.2?}", answers.len(), start.elapsed());
    let by_len = |l: usize| answers.iter().filter(|m| m.len() == l).count();
    println!(
        "  coverage: {} bare, {} with one optional field, {} with both",
        by_len(2),
        by_len(3),
        by_len(4)
    );

    // Candidate checks: the Theorem 6 LogCFL algorithm vs the general one.
    let sample: Vec<Mapping> = answers.iter().take(50).cloned().collect();
    let start = Instant::now();
    for h in &sample {
        assert!(eval_bounded_interface(&p, &db, h, Engine::Tw(1)));
    }
    let tractable = start.elapsed();
    let start = Instant::now();
    for h in &sample {
        assert!(eval_decide(&p, &db, h));
    }
    let general = start.elapsed();
    println!(
        "\nEVAL on {} candidate answers: Theorem 6 algorithm {tractable:.2?} vs general {general:.2?}",
        sample.len()
    );

    // Partial answers: "is Caribou-like band0 recorded at all, extendable?"
    let y = interner.var("y");
    let partial = Mapping::from_pairs(vec![(y, interner.constant("band0"))]);
    let yes = partial_eval_decide(&p, &db, &partial, Engine::Tw(1));
    println!("\nPARTIAL-EVAL {{y ↦ band0}}: {yes}");

    // Maximality: find one maximal answer and verify with MAX-EVAL.
    let maximal = answers
        .iter()
        .max_by_key(|m| m.len())
        .expect("non-empty catalog");
    let is_max = max_eval_decide(&p, &db, maximal, Engine::Tw(1));
    println!(
        "MAX-EVAL on the largest answer {}: {is_max}",
        maximal.display(&interner)
    );
    println!("\nmusic_catalog: done ✓");
}
