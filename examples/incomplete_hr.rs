//! WDPTs over an arbitrary relational schema — the paper's core thesis
//! that optional matching is useful far beyond RDF.
//!
//! An HR database with incomplete records: every employee has a name and a
//! department; salary bands, managers, and office assignments exist only
//! for some. A plain CQ joining all four relations silently drops every
//! employee with a missing field; the WDPT returns everyone, enriched with
//! whatever is known — and projection plus the maximal-mapping semantics
//! answer "who has the most complete record".
//!
//! Run with: `cargo run --example incomplete_hr`

use wdpt::core::{evaluate, evaluate_max, partial_eval_decide, Engine, WdptBuilder};
use wdpt::cq::{evaluate as cq_evaluate, ConjunctiveQuery};
use wdpt::model::parse::{parse_atoms, parse_database};
use wdpt::{Interner, Mapping};

fn main() {
    let mut i = Interner::new();
    let db = parse_database(
        &mut i,
        r#"
        works_in(ada, verification)   works_in(grace, compilers)
        works_in(edsger, verification) works_in(alan, crypto)
        salary(ada, band9)            salary(grace, band8)
        manager(ada, grace)           manager(edsger, ada)
        office(grace, "E-1.14")       office(alan, "C-0.07")
        "#,
    )
    .unwrap();
    println!("HR database ({} facts):\n{}\n", db.size(), db.display(&i));

    // The rigid CQ: requires ALL optional fields to be present.
    let cq = ConjunctiveQuery::new(
        vec![
            i.var("emp"),
            i.var("dept"),
            i.var("band"),
            i.var("boss"),
            i.var("room"),
        ],
        parse_atoms(
            &mut i,
            "works_in(?emp,?dept) salary(?emp,?band) manager(?emp,?boss) office(?emp,?room)",
        )
        .unwrap(),
    );
    let rigid = cq_evaluate(&cq, &db);
    println!(
        "rigid CQ (join all four relations): {} answers — everyone with a gap is lost",
        rigid.len()
    );
    assert!(rigid.is_empty());

    // The WDPT: mandatory core + three independent optional branches.
    let root = parse_atoms(&mut i, "works_in(?emp,?dept)").unwrap();
    let mut b = WdptBuilder::new(root);
    b.child(0, parse_atoms(&mut i, "salary(?emp,?band)").unwrap());
    b.child(0, parse_atoms(&mut i, "manager(?emp,?boss)").unwrap());
    b.child(0, parse_atoms(&mut i, "office(?emp,?room)").unwrap());
    let free: Vec<_> = ["emp", "dept", "band", "boss", "room"]
        .iter()
        .map(|n| i.var(n))
        .collect();
    let p = b.build(free).unwrap();

    let answers = evaluate(&p, &db);
    println!(
        "\nWDPT with optional salary/manager/office: {} answers:",
        answers.len()
    );
    for a in &answers {
        println!("  {}", a.display(&i));
    }
    assert_eq!(answers.len(), 4); // one per employee

    // Projection + maximal-mapping semantics: most complete records first.
    let proj: Vec<_> = ["dept", "band", "boss"].iter().map(|n| i.var(n)).collect();
    let mut b = WdptBuilder::new(parse_atoms(&mut i, "works_in(?emp,?dept)").unwrap());
    b.child(0, parse_atoms(&mut i, "salary(?emp,?band)").unwrap());
    b.child(0, parse_atoms(&mut i, "manager(?emp,?boss)").unwrap());
    b.child(0, parse_atoms(&mut i, "office(?emp,?room)").unwrap());
    let p_proj = b.build(proj).unwrap();
    let max = evaluate_max(&p_proj, &db);
    println!("\nmaximal-mapping semantics over (dept, band, boss):");
    for a in &max {
        println!("  {}", a.display(&i));
    }

    // Partial answers: "could the verification department have a band-9?"
    let probe = Mapping::from_pairs(vec![
        (i.var("dept"), i.constant("verification")),
        (i.var("band"), i.constant("band9")),
    ]);
    let possible = partial_eval_decide(&p_proj, &db, &probe, Engine::Tw(1));
    println!("\nPARTIAL-EVAL {{dept ↦ verification, band ↦ band9}}: {possible}");
    assert!(possible);
    println!("\nincomplete_hr: done ✓");
}
