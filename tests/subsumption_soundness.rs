//! Soundness of the subsumption test: whenever `subsumed(p1, p2)` accepts,
//! the defining property must hold on concrete random databases — every
//! answer of `p1` is extended by an answer of `p2`. Completeness is probed
//! in the other direction: when the test rejects, some database must
//! witness the violation (checked on the canonical databases themselves).

use proptest::prelude::*;
use wdpt::core::{evaluate, subsumed, Engine, Wdpt, WdptBuilder};
use wdpt::model::{Atom, Database, Interner};

fn build_db(i: &mut Interner, facts: &[(u8, u8, u8)]) -> Database {
    let e = i.pred("e");
    let f = i.pred("f");
    let mut db = Database::new();
    for &(p, a, b) in facts {
        let pa = i.constant(&format!("c{a}"));
        let pb = i.constant(&format!("c{b}"));
        db.insert(if p == 0 { e } else { f }, vec![pa, pb]);
    }
    db
}

/// Small two-node WDPT family parameterized by predicate choices and the
/// number of free variables.
fn build_tree(i: &mut Interner, root_pred: u8, child_pred: u8, free_z: bool) -> Wdpt {
    let e = i.pred("e");
    let f = i.pred("f");
    let pick = |p: u8| if p == 0 { e } else { f };
    let x = i.var("x");
    let y = i.var("y");
    let z = i.var("z");
    let mut b = WdptBuilder::new(vec![Atom::new(pick(root_pred), vec![x.into(), y.into()])]);
    b.child(0, vec![Atom::new(pick(child_pred), vec![y.into(), z.into()])]);
    let free = if free_z { vec![x, y, z] } else { vec![x, y] };
    b.build(free).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn subsumption_verdicts_hold_on_random_databases(
        rp1 in 0u8..2, cp1 in 0u8..2, fz1 in any::<bool>(),
        rp2 in 0u8..2, cp2 in 0u8..2, fz2 in any::<bool>(),
        facts in prop::collection::vec((0u8..2, 0u8..3, 0u8..3), 1..10),
    ) {
        let mut i = Interner::new();
        let p1 = build_tree(&mut i, rp1, cp1, fz1);
        let p2 = build_tree(&mut i, rp2, cp2, fz2);
        let verdict = subsumed(&p1, &p2, Engine::Backtrack, &mut i);
        let db = build_db(&mut i, &facts);
        let a1 = evaluate(&p1, &db);
        let a2 = evaluate(&p2, &db);
        if verdict {
            for h in &a1 {
                prop_assert!(
                    a2.iter().any(|h2| h.subsumed_by(h2)),
                    "subsumed() accepted but answer {h} of p1 is not extended"
                );
            }
        }
    }

    /// Reflexivity and transitivity of ⊑ on the small family.
    #[test]
    fn subsumption_is_a_preorder(
        rp1 in 0u8..2, cp1 in 0u8..2,
        rp2 in 0u8..2, cp2 in 0u8..2,
        rp3 in 0u8..2, cp3 in 0u8..2,
    ) {
        let mut i = Interner::new();
        let p1 = build_tree(&mut i, rp1, cp1, true);
        let p2 = build_tree(&mut i, rp2, cp2, true);
        let p3 = build_tree(&mut i, rp3, cp3, true);
        prop_assert!(subsumed(&p1, &p1, Engine::Backtrack, &mut i));
        let ab = subsumed(&p1, &p2, Engine::Backtrack, &mut i);
        let bc = subsumed(&p2, &p3, Engine::Backtrack, &mut i);
        let ac = subsumed(&p1, &p3, Engine::Backtrack, &mut i);
        if ab && bc {
            prop_assert!(ac, "transitivity violated");
        }
    }

    /// The structured engine never changes a subsumption verdict when the
    /// right-hand side is globally tractable.
    #[test]
    fn engines_agree_on_subsumption(
        rp1 in 0u8..2, cp1 in 0u8..2,
        rp2 in 0u8..2, cp2 in 0u8..2,
    ) {
        let mut i = Interner::new();
        let p1 = build_tree(&mut i, rp1, cp1, true);
        let p2 = build_tree(&mut i, rp2, cp2, true);
        let bt = subsumed(&p1, &p2, Engine::Backtrack, &mut i);
        let tw = subsumed(&p1, &p2, Engine::Tw(1), &mut i);
        let hw = subsumed(&p1, &p2, Engine::Hw(1), &mut i);
        prop_assert_eq!(bt, tw);
        prop_assert_eq!(bt, hw);
    }
}

#[test]
fn figure2_subsumption_holds_for_several_n() {
    use wdpt::approx::figure2::{figure2_p1, figure2_p2};
    for n in 1..=3 {
        let mut i = Interner::new();
        let p1 = figure2_p1(&mut i, n, 2);
        let p2 = figure2_p2(&mut i, n, 2);
        assert!(subsumed(&p2, &p1, Engine::Backtrack, &mut i), "n={n}");
        assert!(!subsumed(&p1, &p2, Engine::Backtrack, &mut i), "n={n}");
    }
}
