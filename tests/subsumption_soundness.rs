//! Soundness of the subsumption test: whenever `subsumed(p1, p2)` accepts,
//! the defining property must hold on concrete random databases — every
//! answer of `p1` is extended by an answer of `p2`. Completeness is probed
//! in the other direction: when the test rejects, some database must
//! witness the violation (checked on the canonical databases themselves).
//! Instances are deterministic ([`wdpt::gen::Lcg`], fixed seeds).

use wdpt::core::{evaluate, subsumed, Engine, Wdpt, WdptBuilder};
use wdpt::gen::Lcg;
use wdpt::model::{Atom, Database, Interner};

fn build_db(i: &mut Interner, facts: &[(u8, u8, u8)]) -> Database {
    let e = i.pred("e");
    let f = i.pred("f");
    let mut db = Database::new();
    for &(p, a, b) in facts {
        let pa = i.constant(&format!("c{a}"));
        let pb = i.constant(&format!("c{b}"));
        db.insert(if p == 0 { e } else { f }, vec![pa, pb]);
    }
    db
}

/// Small two-node WDPT family parameterized by predicate choices and the
/// number of free variables.
fn build_tree(i: &mut Interner, root_pred: u8, child_pred: u8, free_z: bool) -> Wdpt {
    let e = i.pred("e");
    let f = i.pred("f");
    let pick = |p: u8| if p == 0 { e } else { f };
    let x = i.var("x");
    let y = i.var("y");
    let z = i.var("z");
    let mut b = WdptBuilder::new(vec![Atom::new(pick(root_pred), vec![x.into(), y.into()])]);
    b.child(
        0,
        vec![Atom::new(pick(child_pred), vec![y.into(), z.into()])],
    );
    let free = if free_z { vec![x, y, z] } else { vec![x, y] };
    b.build(free).unwrap()
}

#[test]
fn subsumption_verdicts_hold_on_random_databases() {
    let mut r = Lcg::new(0x50B5_0001);
    for _case in 0..48 {
        let (rp1, cp1, fz1) = (
            r.gen_range(0..2) as u8,
            r.gen_range(0..2) as u8,
            r.gen_bool(0.5),
        );
        let (rp2, cp2, fz2) = (
            r.gen_range(0..2) as u8,
            r.gen_range(0..2) as u8,
            r.gen_bool(0.5),
        );
        let n = 1 + r.gen_range(0..9);
        let facts: Vec<(u8, u8, u8)> = (0..n)
            .map(|_| {
                (
                    r.gen_range(0..2) as u8,
                    r.gen_range(0..3) as u8,
                    r.gen_range(0..3) as u8,
                )
            })
            .collect();
        let mut i = Interner::new();
        let p1 = build_tree(&mut i, rp1, cp1, fz1);
        let p2 = build_tree(&mut i, rp2, cp2, fz2);
        let verdict = subsumed(&p1, &p2, Engine::Backtrack, &mut i);
        let db = build_db(&mut i, &facts);
        let a1 = evaluate(&p1, &db);
        let a2 = evaluate(&p2, &db);
        if verdict {
            for h in &a1 {
                assert!(
                    a2.iter().any(|h2| h.subsumed_by(h2)),
                    "subsumed() accepted but answer {h} of p1 is not extended"
                );
            }
        }
    }
}

/// Reflexivity and transitivity of ⊑ on the small family.
#[test]
fn subsumption_is_a_preorder() {
    let mut r = Lcg::new(0x50B5_0002);
    for _case in 0..48 {
        let mut i = Interner::new();
        let p1 = build_tree(
            &mut i,
            r.gen_range(0..2) as u8,
            r.gen_range(0..2) as u8,
            true,
        );
        let p2 = build_tree(
            &mut i,
            r.gen_range(0..2) as u8,
            r.gen_range(0..2) as u8,
            true,
        );
        let p3 = build_tree(
            &mut i,
            r.gen_range(0..2) as u8,
            r.gen_range(0..2) as u8,
            true,
        );
        assert!(subsumed(&p1, &p1, Engine::Backtrack, &mut i));
        let ab = subsumed(&p1, &p2, Engine::Backtrack, &mut i);
        let bc = subsumed(&p2, &p3, Engine::Backtrack, &mut i);
        let ac = subsumed(&p1, &p3, Engine::Backtrack, &mut i);
        if ab && bc {
            assert!(ac, "transitivity violated");
        }
    }
}

/// The structured engine never changes a subsumption verdict when the
/// right-hand side is globally tractable.
#[test]
fn engines_agree_on_subsumption() {
    let mut r = Lcg::new(0x50B5_0003);
    for _case in 0..48 {
        let mut i = Interner::new();
        let p1 = build_tree(
            &mut i,
            r.gen_range(0..2) as u8,
            r.gen_range(0..2) as u8,
            true,
        );
        let p2 = build_tree(
            &mut i,
            r.gen_range(0..2) as u8,
            r.gen_range(0..2) as u8,
            true,
        );
        let bt = subsumed(&p1, &p2, Engine::Backtrack, &mut i);
        let tw = subsumed(&p1, &p2, Engine::Tw(1), &mut i);
        let hw = subsumed(&p1, &p2, Engine::Hw(1), &mut i);
        assert_eq!(bt, tw);
        assert_eq!(bt, hw);
    }
}

#[test]
fn figure2_subsumption_holds_for_several_n() {
    use wdpt::approx::figure2::{figure2_p1, figure2_p2};
    for n in 1..=3 {
        let mut i = Interner::new();
        let p1 = figure2_p1(&mut i, n, 2);
        let p2 = figure2_p2(&mut i, n, 2);
        assert!(subsumed(&p2, &p1, Engine::Backtrack, &mut i), "n={n}");
        assert!(!subsumed(&p1, &p2, Engine::Backtrack, &mut i), "n={n}");
    }
}
