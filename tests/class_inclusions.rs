//! Experiment E10: the class landscape of Section 3 — Proposition 2's
//! inclusions and the separations between local tractability, bounded
//! interface, and global tractability, verified on generated trees.

use wdpt::core::{
    has_bounded_interface, interface_width, is_globally_in, is_locally_in, WidthKind,
};
use wdpt::gen::db::rng;
use wdpt::gen::trees::{
    chain_wdpt, clique_chain_wdpt, random_wdpt, star_wdpt, wide_interface_wdpt,
};
use wdpt::Interner;

#[test]
fn proposition2_part1_on_random_trees() {
    // ℓ-TW(k) ∩ BI(c) ⊆ g-TW(k + 2c).
    let mut r = rng(2026);
    let mut checked = 0;
    for _ in 0..80 {
        let mut i = Interner::new();
        let p = random_wdpt(&mut i, 2 + checked % 6, &mut r);
        if !is_locally_in(&p, WidthKind::Tw, 1) {
            continue;
        }
        let c = interface_width(&p);
        assert!(
            is_globally_in(&p, WidthKind::Tw, 1 + 2 * c),
            "Proposition 2(1) violated on a random tree"
        );
        checked += 1;
    }
    assert!(checked > 40, "generator should produce many valid samples");
}

#[test]
fn proposition2_part2_witnesses() {
    // g-TW(1) trees with unbounded interface.
    for n in 1..=7 {
        let mut i = Interner::new();
        let p = wide_interface_wdpt(&mut i, n);
        assert!(is_globally_in(&p, WidthKind::Tw, 1));
        assert_eq!(interface_width(&p), n + 1);
        assert!(!has_bounded_interface(&p, n));
    }
}

#[test]
fn local_plus_bounded_interface_families() {
    for d in [1usize, 3, 6] {
        let mut i = Interner::new();
        let p = chain_wdpt(&mut i, d, None);
        assert!(is_locally_in(&p, WidthKind::Tw, 1));
        assert!(has_bounded_interface(&p, 1));
        assert!(is_globally_in(&p, WidthKind::Tw, 1));
    }
    for b in [1usize, 4, 8] {
        let mut i = Interner::new();
        let p = star_wdpt(&mut i, b);
        assert!(is_locally_in(&p, WidthKind::Tw, 1));
        assert!(has_bounded_interface(&p, 1));
        assert!(is_globally_in(&p, WidthKind::Tw, 1));
    }
}

#[test]
fn clique_chain_separates_local_from_global() {
    // Locally TW(1) (star labels) but the full subtree CQ is a clique:
    // global tractability fails for every fixed k once m is large enough.
    let m = 6;
    let mut i = Interner::new();
    let p = clique_chain_wdpt(&mut i, m);
    assert!(is_locally_in(&p, WidthKind::Tw, 1));
    assert!(!is_globally_in(&p, WidthKind::Tw, m - 2));
    assert!(is_globally_in(&p, WidthKind::Tw, m));
    // Its interface is unbounded (node j shares j variables with child).
    assert!(interface_width(&p) >= m - 1);
}

#[test]
fn tw_k_is_contained_in_hw_k_plus_1_for_node_labels() {
    // TW(k) ⊆ HW(k+1) (cited as [1]); check on the clique-chain labels and
    // the star/chain families via the class predicates.
    let mut i = Interner::new();
    let p = chain_wdpt(&mut i, 4, None);
    assert!(is_locally_in(&p, WidthKind::Tw, 1));
    assert!(is_locally_in(&p, WidthKind::Hw, 2));
    assert!(is_globally_in(&p, WidthKind::Hw, 1)); // paths are acyclic
}

#[test]
fn global_hw_prime_is_stricter_than_global_hw() {
    // A node containing Example 5's pattern: g-HW(1) holds but g-HW'(1)
    // fails (the subquery closure breaks).
    let mut i = Interner::new();
    let body = "e(?x1,?x2) e(?x1,?x3) e(?x2,?x3) t(?x1,?x2,?x3)";
    let atoms = wdpt::model::parse::parse_atoms(&mut i, body).unwrap();
    let p = wdpt::core::WdptBuilder::new(atoms).build(vec![]).unwrap();
    assert!(is_globally_in(&p, WidthKind::Hw, 1));
    assert!(!is_globally_in(&p, WidthKind::HwPrime, 1));
    assert!(is_globally_in(&p, WidthKind::HwPrime, 2));
}
