//! Property tests for the width machinery underlying the tractable classes:
//! consistency between exact treewidth, heuristics, lower bounds,
//! hypertree decompositions, and the acyclicity notions.

use proptest::prelude::*;
use wdpt::decomp::{
    beta_hypertreewidth_at_most, hypertree_width_at_most, is_alpha_acyclic, is_beta_acyclic,
    treewidth_at_most, Hypergraph,
};
use wdpt::decomp::treewidth::{
    decomposition_from_order, degeneracy_lower_bound, treewidth_exact, treewidth_exact_with_order,
    treewidth_upper_bound,
};

/// Random hypergraph on ≤ 7 vertices with binary and ternary edges.
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (2usize..=7).prop_flat_map(|n| {
        prop::collection::vec(
            prop::collection::vec(0usize..n, 2..=3),
            1..=8,
        )
        .prop_map(move |edges| Hypergraph::new(n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The min-fill heuristic never beats the exact treewidth, and its
    /// decomposition is always valid.
    #[test]
    fn heuristic_bounds_exact_from_above(h in arb_hypergraph()) {
        let exact = treewidth_exact(&h);
        let (ub, td) = treewidth_upper_bound(&h);
        prop_assert!(ub >= exact);
        prop_assert!(td.is_valid_for(&h));
        prop_assert_eq!(td.width(), ub);
    }

    /// Degeneracy is a valid lower bound.
    #[test]
    fn degeneracy_bounds_exact_from_below(h in arb_hypergraph()) {
        prop_assert!(degeneracy_lower_bound(&h) <= treewidth_exact(&h));
    }

    /// The exact DP's elimination order rebuilds a decomposition of exactly
    /// the optimal width.
    #[test]
    fn exact_order_is_a_witness(h in arb_hypergraph()) {
        let (tw, order) = treewidth_exact_with_order(&h);
        let td = decomposition_from_order(&h, &order);
        prop_assert!(td.is_valid_for(&h));
        prop_assert_eq!(td.width(), tw);
    }

    /// `treewidth_at_most` agrees with the exact value on both sides.
    #[test]
    fn at_most_is_consistent(h in arb_hypergraph()) {
        let tw = treewidth_exact(&h);
        if tw > 0 {
            prop_assert!(treewidth_at_most(&h, tw - 1).is_none());
        }
        let td = treewidth_at_most(&h, tw).expect("exact width must be accepted");
        prop_assert!(td.is_valid_for(&h));
        prop_assert!(td.width() <= tw);
    }

    /// α-acyclicity coincides with generalized hypertreewidth 1, and every
    /// hypergraph has ghw ≤ tw + 1 (bags covered edge-by-edge).
    #[test]
    fn acyclicity_and_width_relations(h in arb_hypergraph()) {
        let acyclic = is_alpha_acyclic(&h);
        let width1 = hypertree_width_at_most(&h, 1).is_some();
        prop_assert_eq!(acyclic, width1);
        let tw = treewidth_exact(&h);
        let d = hypertree_width_at_most(&h, tw + 1);
        prop_assert!(d.is_some(), "ghw ≤ tw + 1 must hold");
        prop_assert!(d.unwrap().is_valid_for(&h));
    }

    /// β-acyclic implies α-acyclic, and β-hypertreewidth is monotone in k.
    #[test]
    fn beta_implies_alpha(h in arb_hypergraph()) {
        if is_beta_acyclic(&h) {
            prop_assert!(is_alpha_acyclic(&h));
        }
        if h.num_edges() <= 6
            && beta_hypertreewidth_at_most(&h, 2) {
                prop_assert!(beta_hypertreewidth_at_most(&h, 3));
            }
    }

    /// Hypertree decompositions found for increasing k never report a
    /// larger width than requested.
    #[test]
    fn hypertree_width_respects_bound(h in arb_hypergraph()) {
        for k in 1..=3usize {
            if let Some(d) = hypertree_width_at_most(&h, k) {
                prop_assert!(d.width() <= k);
                prop_assert!(d.is_valid_for(&h));
            }
        }
        // k = m always works: cover every bag with all edges.
        let m = h.num_edges().max(1);
        prop_assert!(hypertree_width_at_most(&h, m).is_some());
    }
}
