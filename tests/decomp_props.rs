//! Property tests for the width machinery underlying the tractable classes:
//! consistency between exact treewidth, heuristics, lower bounds,
//! hypertree decompositions, and the acyclicity notions — on
//! deterministically generated random hypergraphs ([`wdpt::gen::Lcg`],
//! fixed seeds).

use wdpt::decomp::treewidth::{
    decomposition_from_order, degeneracy_lower_bound, treewidth_exact, treewidth_exact_with_order,
    treewidth_upper_bound,
};
use wdpt::decomp::{
    beta_hypertreewidth_at_most, hypertree_width_at_most, is_alpha_acyclic, is_beta_acyclic,
    treewidth_at_most, Hypergraph,
};
use wdpt::gen::Lcg;

/// Random hypergraph on ≤ 7 vertices with binary and ternary edges.
fn random_hypergraph(r: &mut Lcg) -> Hypergraph {
    let n = 2 + r.gen_range(0..6); // 2..=7 vertices
    let m = 1 + r.gen_range(0..8); // 1..=8 edges
    let edges: Vec<Vec<usize>> = (0..m)
        .map(|_| {
            let arity = 2 + r.gen_range(0..2); // binary or ternary
            (0..arity).map(|_| r.gen_range(0..n)).collect()
        })
        .collect();
    Hypergraph::new(n, edges)
}

/// The min-fill heuristic never beats the exact treewidth, and its
/// decomposition is always valid.
#[test]
fn heuristic_bounds_exact_from_above() {
    let mut r = Lcg::new(0xDEC0_0001);
    for _case in 0..64 {
        let h = random_hypergraph(&mut r);
        let exact = treewidth_exact(&h);
        let (ub, td) = treewidth_upper_bound(&h);
        assert!(ub >= exact);
        assert!(td.is_valid_for(&h));
        assert_eq!(td.width(), ub);
    }
}

/// Degeneracy is a valid lower bound.
#[test]
fn degeneracy_bounds_exact_from_below() {
    let mut r = Lcg::new(0xDEC0_0002);
    for _case in 0..64 {
        let h = random_hypergraph(&mut r);
        assert!(degeneracy_lower_bound(&h) <= treewidth_exact(&h));
    }
}

/// The exact DP's elimination order rebuilds a decomposition of exactly
/// the optimal width.
#[test]
fn exact_order_is_a_witness() {
    let mut r = Lcg::new(0xDEC0_0003);
    for _case in 0..64 {
        let h = random_hypergraph(&mut r);
        let (tw, order) = treewidth_exact_with_order(&h);
        let td = decomposition_from_order(&h, &order);
        assert!(td.is_valid_for(&h));
        assert_eq!(td.width(), tw);
    }
}

/// `treewidth_at_most` agrees with the exact value on both sides.
#[test]
fn at_most_is_consistent() {
    let mut r = Lcg::new(0xDEC0_0004);
    for _case in 0..64 {
        let h = random_hypergraph(&mut r);
        let tw = treewidth_exact(&h);
        if tw > 0 {
            assert!(treewidth_at_most(&h, tw - 1).is_none());
        }
        let td = treewidth_at_most(&h, tw).expect("exact width must be accepted");
        assert!(td.is_valid_for(&h));
        assert!(td.width() <= tw);
    }
}

/// α-acyclicity coincides with generalized hypertreewidth 1, and every
/// hypergraph has ghw ≤ tw + 1 (bags covered edge-by-edge).
#[test]
fn acyclicity_and_width_relations() {
    let mut r = Lcg::new(0xDEC0_0005);
    for _case in 0..64 {
        let h = random_hypergraph(&mut r);
        let acyclic = is_alpha_acyclic(&h);
        let width1 = hypertree_width_at_most(&h, 1).is_some();
        assert_eq!(acyclic, width1);
        let tw = treewidth_exact(&h);
        let d = hypertree_width_at_most(&h, tw + 1);
        assert!(d.is_some(), "ghw ≤ tw + 1 must hold");
        assert!(d.unwrap().is_valid_for(&h));
    }
}

/// β-acyclic implies α-acyclic, and β-hypertreewidth is monotone in k.
#[test]
fn beta_implies_alpha() {
    let mut r = Lcg::new(0xDEC0_0006);
    for _case in 0..64 {
        let h = random_hypergraph(&mut r);
        if is_beta_acyclic(&h) {
            assert!(is_alpha_acyclic(&h));
        }
        if h.num_edges() <= 6 && beta_hypertreewidth_at_most(&h, 2) {
            assert!(beta_hypertreewidth_at_most(&h, 3));
        }
    }
}

/// Hypertree decompositions found for increasing k never report a larger
/// width than requested.
#[test]
fn hypertree_width_respects_bound() {
    let mut r = Lcg::new(0xDEC0_0007);
    for _case in 0..64 {
        let h = random_hypergraph(&mut r);
        for k in 1..=3usize {
            if let Some(d) = hypertree_width_at_most(&h, k) {
                assert!(d.width() <= k);
                assert!(d.is_valid_for(&h));
            }
        }
        // k = m always works: cover every bag with all edges.
        let m = h.num_edges().max(1);
        assert!(hypertree_width_at_most(&h, m).is_some());
    }
}
