//! Unions of WDPTs through the SPARQL front end (Section 6): parsing
//! `UNION`, evaluating unions, and the full `φ_cq` optimization pipeline.

use wdpt::approx::uwdpt::{in_m_uwb, phi_cq, uwb_approximation, uwdpt_subsumed, Uwdpt};
use wdpt::core::{Engine, WidthKind};
use wdpt::sparql::{parse_union_query, TripleStore};
use wdpt::{Interner, Mapping};

#[test]
fn parses_union_of_patterns() {
    let mut i = Interner::new();
    let q = parse_union_query(
        &mut i,
        "(?x, type, album) OPT (?x, rating, ?r) UNION (?x, type, single)",
    )
    .unwrap();
    assert_eq!(q.branches.len(), 2);
    let wdpts = q.to_wdpts(&mut i).unwrap();
    assert_eq!(wdpts.len(), 2);
    assert_eq!(wdpts[0].node_count(), 2);
    assert_eq!(wdpts[1].node_count(), 1);
}

#[test]
fn union_select_restricts_per_branch() {
    let mut i = Interner::new();
    let q = parse_union_query(
        &mut i,
        "SELECT ?x ?r WHERE { (?x, type, album) OPT (?x, rating, ?r) UNION (?y, type, single) }",
    )
    .unwrap();
    let wdpts = q.to_wdpts(&mut i).unwrap();
    // Branch 1 keeps {x, r}; branch 2 mentions neither, so its projection
    // is empty (a Boolean disjunct).
    assert_eq!(wdpts[0].free_vars().len(), 2);
    assert_eq!(wdpts[1].free_vars().len(), 0);
}

#[test]
fn union_evaluation_combines_branch_answers() {
    let mut i = Interner::new();
    let q = parse_union_query(
        &mut i,
        "(?x, type, album) OPT (?x, rating, ?r) UNION (?x, type, single)",
    )
    .unwrap();
    let phi = Uwdpt::new(q.to_wdpts(&mut i).unwrap());
    let mut ts = TripleStore::new();
    ts.insert_str(&mut i, "Swim", "type", "album");
    ts.insert_str(&mut i, "Swim", "rating", "9");
    ts.insert_str(&mut i, "Odessa", "type", "single");
    let answers = phi.evaluate(ts.database());
    // {x ↦ Swim, r ↦ 9} from branch 1 and {x ↦ Odessa} from branch 2.
    assert_eq!(answers.len(), 2);
    let x = i.var("x");
    let r = i.var("r");
    let swim = Mapping::from_pairs(vec![(x, i.constant("Swim")), (r, i.constant("9"))]);
    let odessa = Mapping::from_pairs(vec![(x, i.constant("Odessa"))]);
    assert!(answers.contains(&swim));
    assert!(answers.contains(&odessa));
    assert!(phi.eval_decide(ts.database(), &swim));
    assert!(phi.max_eval_decide(ts.database(), &swim, Engine::Tw(1)));
}

#[test]
fn union_pipeline_membership_and_approximation() {
    let mut i = Interner::new();
    // Acyclic branches: the union is in M(UWB(1)) and its approximation is
    // ≡ₛ-equivalent to itself.
    let q = parse_union_query(
        &mut i,
        "(?x, p, ?y) OPT (?y, q, ?z) UNION (?a, r, ?b) AND (?b, r, ?c)",
    )
    .unwrap();
    let phi = Uwdpt::new(q.to_wdpts(&mut i).unwrap());
    assert!(in_m_uwb(&phi, WidthKind::Tw, 1, &mut i));
    let approx = uwb_approximation(&phi, WidthKind::Tw, 1, &mut i);
    assert!(uwdpt_subsumed(&approx, &phi, Engine::Backtrack, &mut i));
    assert!(uwdpt_subsumed(&phi, &approx, Engine::Backtrack, &mut i));
}

#[test]
fn phi_cq_counts_subtrees_across_branches() {
    let mut i = Interner::new();
    let q = parse_union_query(&mut i, "(?x, p, ?y) OPT (?y, q, ?z) UNION (?a, r, ?b)").unwrap();
    let phi = Uwdpt::new(q.to_wdpts(&mut i).unwrap());
    // Branch 1 has 2 rooted subtrees; branch 2 has 1.
    assert_eq!(phi_cq(&phi).len(), 3);
}
