//! Differential tests: every specialized algorithm must agree with the
//! reference semantics on deterministically generated random instances.
//!
//! The instances are driven by the std-only [`wdpt::gen::Lcg`] PRNG (fixed
//! seeds, so every run explores the same cases) instead of an external
//! property-testing framework.

use std::collections::BTreeSet;
use wdpt::core::{
    eval_bounded_interface, eval_decide, max_eval_decide, partial_eval_decide, semantics, Engine,
    Wdpt, WdptBuilder,
};
use wdpt::cq::{backtrack, structured, ConjunctiveQuery};
use wdpt::gen::Lcg;
use wdpt::model::{Atom, Database, Interner, Mapping, Var};

/// A random fact list over `e/2`, `f/2` with constants `c0..c{dom}`:
/// triples `(predicate, subject, object)`.
fn random_facts(r: &mut Lcg, dom: usize, max_edges: usize) -> Vec<(u8, u8, u8)> {
    let n = 1 + r.gen_range(0..max_edges);
    (0..n)
        .map(|_| {
            (
                r.gen_range(0..2) as u8,
                r.gen_range(0..dom) as u8,
                r.gen_range(0..dom) as u8,
            )
        })
        .collect()
}

fn build_db(i: &mut Interner, facts: &[(u8, u8, u8)]) -> Database {
    let e = i.pred("e");
    let f = i.pred("f");
    let mut db = Database::new();
    for &(p, a, b) in facts {
        let pa = i.constant(&format!("c{a}"));
        let pb = i.constant(&format!("c{b}"));
        db.insert(if p == 0 { e } else { f }, vec![pa, pb]);
    }
    db
}

/// A random small CQ body over at most `nv` variables.
fn random_body(r: &mut Lcg, nv: usize, max_atoms: usize) -> Vec<(u8, u8, u8)> {
    let n = 1 + r.gen_range(0..max_atoms);
    (0..n)
        .map(|_| {
            (
                r.gen_range(0..2) as u8,
                r.gen_range(0..nv) as u8,
                r.gen_range(0..nv) as u8,
            )
        })
        .collect()
}

fn build_body(i: &mut Interner, spec: &[(u8, u8, u8)]) -> Vec<Atom> {
    let e = i.pred("e");
    let f = i.pred("f");
    spec.iter()
        .map(|&(p, a, b)| {
            let va = i.var(&format!("v{a}"));
            let vb = i.var(&format!("v{b}"));
            Atom::new(if p == 0 { e } else { f }, vec![va.into(), vb.into()])
        })
        .collect()
}

/// Structured TW evaluation agrees with backtracking on satisfiability.
#[test]
fn structured_tw_matches_backtracking() {
    let mut r = Lcg::new(0x7157_0001);
    for _case in 0..64 {
        let facts = random_facts(&mut r, 4, 12);
        let body = random_body(&mut r, 4, 5);
        let mut i = Interner::new();
        let db = build_db(&mut i, &facts);
        let q = ConjunctiveQuery::boolean(build_body(&mut i, &body));
        let reference = backtrack::extend_exists(&db, q.body(), &Mapping::empty());
        let plan = structured::StructuredPlan::for_query_tw(&q, 4).expect("≤4 vars");
        let got = structured::boolean_eval_structured(&q, &db, &plan, &Mapping::empty());
        assert_eq!(got, reference, "facts={facts:?} body={body:?}");
    }
}

/// Structured HW evaluation agrees with backtracking on satisfiability.
#[test]
fn structured_hw_matches_backtracking() {
    let mut r = Lcg::new(0x7157_0002);
    for _case in 0..64 {
        let facts = random_facts(&mut r, 4, 12);
        let body = random_body(&mut r, 4, 4);
        let mut i = Interner::new();
        let db = build_db(&mut i, &facts);
        let q = ConjunctiveQuery::boolean(build_body(&mut i, &body));
        let reference = backtrack::extend_exists(&db, q.body(), &Mapping::empty());
        let plan = structured::StructuredPlan::for_query_hw(&q, 4).expect("≤4 atoms");
        let got = structured::boolean_eval_structured(&q, &db, &plan, &Mapping::empty());
        assert_eq!(got, reference, "facts={facts:?} body={body:?}");
    }
}

/// EVAL decision procedures agree with the enumeration semantics, and the
/// Theorem 6 algorithm agrees with the general one.
#[test]
fn eval_procedures_agree() {
    let mut r = Lcg::new(0x7157_0003);
    for _case in 0..64 {
        let facts = random_facts(&mut r, 3, 10);
        let use_f = r.gen_bool(0.5);
        let deep = r.gen_bool(0.5);
        let mut i = Interner::new();
        let db = build_db(&mut i, &facts);
        let e = i.pred("e");
        let f = i.pred("f");
        let x = i.var("x");
        let u = i.var("u");
        let y = i.var("y");
        let z = i.var("z");
        let mut b = WdptBuilder::new(vec![Atom::new(e, vec![x.into(), u.into()])]);
        let c1 = b.child(
            0,
            vec![Atom::new(
                if use_f { f } else { e },
                vec![u.into(), y.into()],
            )],
        );
        if deep {
            b.child(c1, vec![Atom::new(e, vec![y.into(), z.into()])]);
        } else {
            b.child(0, vec![Atom::new(f, vec![u.into(), z.into()])]);
        }
        let p = b.build(vec![x, y, z]).unwrap();
        let answers = semantics::evaluate(&p, &db);
        // Every enumerated answer is accepted by both procedures…
        for h in &answers {
            assert!(eval_decide(&p, &db, h));
            assert!(eval_bounded_interface(&p, &db, h, Engine::Backtrack));
            assert!(eval_bounded_interface(&p, &db, h, Engine::Tw(1)));
        }
        // …and probes agree in both directions.
        let dom = db.active_domain().iter().copied().collect::<Vec<_>>();
        for &c0 in dom.iter().take(3) {
            let probe = Mapping::from_pairs(vec![(x, c0)]);
            let expected = answers.contains(&probe);
            assert_eq!(eval_decide(&p, &db, &probe), expected);
            assert_eq!(
                eval_bounded_interface(&p, &db, &probe, Engine::Backtrack),
                expected
            );
            for &c1 in dom.iter().take(2) {
                let probe2 = Mapping::from_pairs(vec![(x, c0), (y, c1)]);
                let expected2 = answers.contains(&probe2);
                assert_eq!(eval_decide(&p, &db, &probe2), expected2);
                assert_eq!(
                    eval_bounded_interface(&p, &db, &probe2, Engine::Tw(1)),
                    expected2
                );
            }
        }
    }
}

/// PARTIAL-EVAL matches the definition "∃ answer extending h", and
/// MAX-EVAL matches membership in p_m(D).
#[test]
fn partial_and_max_match_semantics() {
    let mut r = Lcg::new(0x7157_0004);
    for _case in 0..64 {
        let facts = random_facts(&mut r, 3, 10);
        let probe_x = r.gen_range(0..3);
        let probe_y = r.gen_range(0..3);
        let mut i = Interner::new();
        let db = build_db(&mut i, &facts);
        let e = i.pred("e");
        let f = i.pred("f");
        let x = i.var("x");
        let y = i.var("y");
        let z = i.var("z");
        let mut b = WdptBuilder::new(vec![Atom::new(e, vec![x.into(), y.into()])]);
        b.child(0, vec![Atom::new(f, vec![y.into(), z.into()])]);
        let p = b.build(vec![x, y, z]).unwrap();
        let answers = semantics::evaluate(&p, &db);
        let max_answers = semantics::evaluate_max(&p, &db);
        let cx = i.constant(&format!("c{probe_x}"));
        let cy = i.constant(&format!("c{probe_y}"));
        for probe in [
            Mapping::from_pairs(vec![(x, cx)]),
            Mapping::from_pairs(vec![(x, cx), (y, cy)]),
            Mapping::empty(),
        ] {
            let expect_partial = answers.iter().any(|a| probe.subsumed_by(a));
            assert_eq!(
                partial_eval_decide(&p, &db, &probe, Engine::Backtrack),
                expect_partial
            );
            assert_eq!(
                partial_eval_decide(&p, &db, &probe, Engine::Tw(1)),
                expect_partial
            );
            let expect_max = max_answers.contains(&probe);
            assert_eq!(
                max_eval_decide(&p, &db, &probe, Engine::Backtrack),
                expect_max
            );
            assert_eq!(max_eval_decide(&p, &db, &probe, Engine::Tw(1)), expect_max);
        }
    }
}

/// `p(D)` answers are pairwise consistent with Definition 2: every answer
/// is the projection of a maximal homomorphism.
#[test]
fn answers_are_projections_of_maximal_homs() {
    let mut r = Lcg::new(0x7157_0005);
    for _case in 0..64 {
        let facts = random_facts(&mut r, 3, 8);
        let mut i = Interner::new();
        let db = build_db(&mut i, &facts);
        let e = i.pred("e");
        let x = i.var("x");
        let y = i.var("y");
        let z = i.var("z");
        let mut b = WdptBuilder::new(vec![Atom::new(e, vec![x.into(), y.into()])]);
        b.child(0, vec![Atom::new(e, vec![y.into(), z.into()])]);
        let p: Wdpt = b.build(vec![x, z]).unwrap();
        let free: BTreeSet<Var> = p.free_set();
        let homs = semantics::maximal_homomorphisms(&p, &db);
        let answers = semantics::evaluate(&p, &db);
        for h in &homs {
            assert!(semantics::is_maximal_homomorphism(&p, &db, h));
            assert!(answers.contains(&h.restrict(&free)));
        }
    }
}

/// The thread-parallel evaluator is answer-for-answer identical to the
/// sequential one — on the generator's random well-designed trees over
/// random graph databases, across thread counts (including the
/// auto-detecting `0` and the degenerate `1`).
#[test]
fn parallel_evaluator_agrees_with_sequential() {
    let mut r = Lcg::new(0x7157_0006);
    for case in 0..40 {
        let mut i = Interner::new();
        let (db, _) = wdpt::gen::random_graph_db(&mut i, 4, 3 + r.gen_range(0..12), 1000 + case);
        // `random_wdpt` uses e/2 and f/2; mirror some e-facts into f so the
        // optional branches are sometimes satisfiable.
        let mut db = db;
        let f = i.pred("f");
        let e_tuples: Vec<Vec<_>> = match db.relation(i.pred("e")) {
            Some(rel) => rel.tuples().map(|t| t.to_vec()).collect(),
            None => Vec::new(),
        };
        for t in e_tuples {
            if r.gen_bool(0.5) {
                db.insert(f, t);
            }
        }
        let p = wdpt::gen::random_wdpt(&mut i, 1 + r.gen_range(0..7), &mut r);
        let threads = r.gen_range(0..6);
        let sequential = semantics::evaluate(&p, &db);
        let parallel = semantics::evaluate_parallel(&p, &db, threads);
        assert_eq!(parallel, sequential, "case={case} threads={threads}");
        assert_eq!(
            semantics::evaluate_max_parallel(&p, &db, threads),
            semantics::evaluate_max(&p, &db),
            "case={case} threads={threads}"
        );
        assert_eq!(
            semantics::maximal_homomorphisms_parallel(&p, &db, threads),
            semantics::maximal_homomorphisms(&p, &db),
            "case={case} threads={threads}"
        );
    }
}
