//! Property-based differential tests: every specialized algorithm must
//! agree with the reference semantics on random instances.

use proptest::prelude::*;
use std::collections::BTreeSet;
use wdpt::core::{
    eval_bounded_interface, eval_decide, max_eval_decide, partial_eval_decide, semantics, Engine,
    Wdpt, WdptBuilder,
};
use wdpt::cq::{backtrack, structured, ConjunctiveQuery};
use wdpt::model::{Atom, Database, Interner, Mapping, Var};

/// A random database over `e/2`, `f/2` with constants `c0..c{dom}`.
fn arb_db(dom: usize, max_edges: usize) -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec(
        (0u8..2, 0u8..dom as u8, 0u8..dom as u8),
        1..=max_edges,
    )
}

fn build_db(i: &mut Interner, facts: &[(u8, u8, u8)]) -> Database {
    let e = i.pred("e");
    let f = i.pred("f");
    let mut db = Database::new();
    for &(p, a, b) in facts {
        let pa = i.constant(&format!("c{a}"));
        let pb = i.constant(&format!("c{b}"));
        db.insert(if p == 0 { e } else { f }, vec![pa, pb]);
    }
    db
}

/// Random small CQ body over at most `nv` variables.
fn arb_body(nv: usize, max_atoms: usize) -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec(
        (0u8..2, 0u8..nv as u8, 0u8..nv as u8),
        1..=max_atoms,
    )
}

fn build_body(i: &mut Interner, spec: &[(u8, u8, u8)]) -> Vec<Atom> {
    let e = i.pred("e");
    let f = i.pred("f");
    spec.iter()
        .map(|&(p, a, b)| {
            let va = i.var(&format!("v{a}"));
            let vb = i.var(&format!("v{b}"));
            Atom::new(if p == 0 { e } else { f }, vec![va.into(), vb.into()])
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structured TW evaluation agrees with backtracking on satisfiability.
    #[test]
    fn structured_tw_matches_backtracking(
        facts in arb_db(4, 12),
        body in arb_body(4, 5),
    ) {
        let mut i = Interner::new();
        let db = build_db(&mut i, &facts);
        let q = ConjunctiveQuery::boolean(build_body(&mut i, &body));
        let reference = backtrack::extend_exists(&db, q.body(), &Mapping::empty());
        let plan = structured::StructuredPlan::for_query_tw(&q, 4).expect("≤4 vars");
        let got = structured::boolean_eval_structured(&q, &db, &plan, &Mapping::empty());
        prop_assert_eq!(got, reference);
    }

    /// Structured HW evaluation agrees with backtracking on satisfiability.
    #[test]
    fn structured_hw_matches_backtracking(
        facts in arb_db(4, 12),
        body in arb_body(4, 4),
    ) {
        let mut i = Interner::new();
        let db = build_db(&mut i, &facts);
        let q = ConjunctiveQuery::boolean(build_body(&mut i, &body));
        let reference = backtrack::extend_exists(&db, q.body(), &Mapping::empty());
        let plan = structured::StructuredPlan::for_query_hw(&q, 4).expect("≤4 atoms");
        let got = structured::boolean_eval_structured(&q, &db, &plan, &Mapping::empty());
        prop_assert_eq!(got, reference);
    }

    /// EVAL decision procedures agree with the enumeration semantics, and
    /// the Theorem 6 algorithm agrees with the general one.
    #[test]
    fn eval_procedures_agree(
        facts in arb_db(3, 10),
        use_f in any::<bool>(),
        deep in any::<bool>(),
    ) {
        let mut i = Interner::new();
        let db = build_db(&mut i, &facts);
        let e = i.pred("e");
        let f = i.pred("f");
        let x = i.var("x");
        let u = i.var("u");
        let y = i.var("y");
        let z = i.var("z");
        let mut b = WdptBuilder::new(vec![Atom::new(e, vec![x.into(), u.into()])]);
        let c1 = b.child(0, vec![Atom::new(if use_f { f } else { e }, vec![u.into(), y.into()])]);
        if deep {
            b.child(c1, vec![Atom::new(e, vec![y.into(), z.into()])]);
        } else {
            b.child(0, vec![Atom::new(f, vec![u.into(), z.into()])]);
        }
        let p = b.build(vec![x, y, z]).unwrap();
        let answers = semantics::evaluate(&p, &db);
        // Every enumerated answer is accepted by both procedures…
        for h in &answers {
            prop_assert!(eval_decide(&p, &db, h));
            prop_assert!(eval_bounded_interface(&p, &db, h, Engine::Backtrack));
            prop_assert!(eval_bounded_interface(&p, &db, h, Engine::Tw(1)));
        }
        // …and probes agree in both directions.
        let dom = db.active_domain().iter().copied().collect::<Vec<_>>();
        for &c0 in dom.iter().take(3) {
            let probe = Mapping::from_pairs(vec![(x, c0)]);
            let expected = answers.contains(&probe);
            prop_assert_eq!(eval_decide(&p, &db, &probe), expected);
            prop_assert_eq!(
                eval_bounded_interface(&p, &db, &probe, Engine::Backtrack),
                expected
            );
            for &c1 in dom.iter().take(2) {
                let probe2 = Mapping::from_pairs(vec![(x, c0), (y, c1)]);
                let expected2 = answers.contains(&probe2);
                prop_assert_eq!(eval_decide(&p, &db, &probe2), expected2);
                prop_assert_eq!(
                    eval_bounded_interface(&p, &db, &probe2, Engine::Tw(1)),
                    expected2
                );
            }
        }
    }

    /// PARTIAL-EVAL matches the definition "∃ answer extending h", and
    /// MAX-EVAL matches membership in p_m(D).
    #[test]
    fn partial_and_max_match_semantics(
        facts in arb_db(3, 10),
        probe_x in 0u8..3,
        probe_y in 0u8..3,
    ) {
        let mut i = Interner::new();
        let db = build_db(&mut i, &facts);
        let e = i.pred("e");
        let f = i.pred("f");
        let x = i.var("x");
        let y = i.var("y");
        let z = i.var("z");
        let mut b = WdptBuilder::new(vec![Atom::new(e, vec![x.into(), y.into()])]);
        b.child(0, vec![Atom::new(f, vec![y.into(), z.into()])]);
        let p = b.build(vec![x, y, z]).unwrap();
        let answers = semantics::evaluate(&p, &db);
        let max_answers = semantics::evaluate_max(&p, &db);
        let cx = i.constant(&format!("c{probe_x}"));
        let cy = i.constant(&format!("c{probe_y}"));
        for probe in [
            Mapping::from_pairs(vec![(x, cx)]),
            Mapping::from_pairs(vec![(x, cx), (y, cy)]),
            Mapping::empty(),
        ] {
            let expect_partial = answers.iter().any(|a| probe.subsumed_by(a));
            prop_assert_eq!(
                partial_eval_decide(&p, &db, &probe, Engine::Backtrack),
                expect_partial
            );
            prop_assert_eq!(
                partial_eval_decide(&p, &db, &probe, Engine::Tw(1)),
                expect_partial
            );
            let expect_max = max_answers.contains(&probe);
            prop_assert_eq!(
                max_eval_decide(&p, &db, &probe, Engine::Backtrack),
                expect_max
            );
            prop_assert_eq!(
                max_eval_decide(&p, &db, &probe, Engine::Tw(1)),
                expect_max
            );
        }
    }

    /// `p(D)` answers are pairwise consistent with Definition 2: every
    /// answer is the projection of a maximal homomorphism.
    #[test]
    fn answers_are_projections_of_maximal_homs(facts in arb_db(3, 8)) {
        let mut i = Interner::new();
        let db = build_db(&mut i, &facts);
        let e = i.pred("e");
        let x = i.var("x");
        let y = i.var("y");
        let z = i.var("z");
        let mut b = WdptBuilder::new(vec![Atom::new(e, vec![x.into(), y.into()])]);
        b.child(0, vec![Atom::new(e, vec![y.into(), z.into()])]);
        let p: Wdpt = b.build(vec![x, z]).unwrap();
        let free: BTreeSet<Var> = p.free_set();
        let homs = semantics::maximal_homomorphisms(&p, &db);
        let answers = semantics::evaluate(&p, &db);
        for h in &homs {
            prop_assert!(semantics::is_maximal_homomorphism(&p, &db, h));
            prop_assert!(answers.contains(&h.restrict(&free)));
        }
    }
}
