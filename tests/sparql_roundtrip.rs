//! Round-trip and semantics properties of the {AND, OPT} front end.

use proptest::prelude::*;
use wdpt::core::evaluate;
use wdpt::sparql::{parse_query, GraphPattern, TriplePattern, TripleStore};
use wdpt::{Interner, Term};

/// Builds a random *well-designed-by-construction* pattern: a chain of OPTs
/// whose right-hand sides reuse exactly one variable from the mandatory
/// part and introduce one fresh variable each.
fn arb_pattern() -> impl Strategy<Value = (u8, Vec<(u8, u8)>)> {
    (1u8..4, prop::collection::vec((0u8..3, 0u8..4), 0..4))
}

fn build_pattern(i: &mut Interner, core_triples: u8, opts: &[(u8, u8)]) -> GraphPattern {
    let preds = ["p", "q", "r"];
    let mut core: Option<GraphPattern> = None;
    for t in 0..core_triples {
        let s = Term::Var(i.var(&format!("a{t}")));
        let p = Term::Const(i.constant(preds[t as usize % 3]));
        let o = Term::Var(i.var(&format!("a{}", t + 1)));
        let g = GraphPattern::Triple(TriplePattern { s, p, o });
        core = Some(match core {
            None => g,
            Some(acc) => GraphPattern::And(Box::new(acc), Box::new(g)),
        });
    }
    let mut pattern = core.expect("at least one core triple");
    for (j, &(pred, anchor)) in opts.iter().enumerate() {
        let anchor = anchor % (core_triples + 1);
        let s = Term::Var(i.var(&format!("a{anchor}")));
        let p = Term::Const(i.constant(preds[pred as usize % 3]));
        let o = Term::Var(i.var(&format!("o{j}")));
        pattern = GraphPattern::Opt(
            Box::new(pattern),
            Box::new(GraphPattern::Triple(TriplePattern { s, p, o })),
        );
    }
    pattern
}

fn build_store(i: &mut Interner, facts: &[(u8, u8, u8)]) -> TripleStore {
    let preds = ["p", "q", "r"];
    let mut ts = TripleStore::new();
    for &(s, p, o) in facts {
        let sc = format!("n{s}");
        let oc = format!("n{o}");
        ts.insert_str(i, &sc, preds[p as usize % 3], &oc);
    }
    ts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// display → parse round-trips structurally.
    #[test]
    fn display_parse_roundtrip((core, opts) in arb_pattern()) {
        let mut i = Interner::new();
        let pat = build_pattern(&mut i, core, &opts);
        prop_assert!(pat.is_well_designed());
        let text = pat.display(&i);
        let parsed = parse_query(&mut i, &text).unwrap();
        prop_assert_eq!(parsed.pattern, pat);
    }

    /// wdpt → pattern → wdpt preserves the tree and the semantics.
    #[test]
    fn wdpt_roundtrip_preserves_semantics(
        (core, opts) in arb_pattern(),
        facts in prop::collection::vec((0u8..4, 0u8..3, 0u8..4), 1..10),
    ) {
        let mut i = Interner::new();
        let pat = build_pattern(&mut i, core, &opts);
        let p = pat.to_wdpt(None, &mut i).unwrap();
        let back = GraphPattern::from_wdpt(&p).unwrap();
        let p2 = back.to_wdpt(None, &mut i).unwrap();
        prop_assert_eq!(&p, &p2);
        let ts = build_store(&mut i, &facts);
        let mut a1 = evaluate(&p, ts.database());
        let mut a2 = evaluate(&p2, ts.database());
        a1.sort();
        a2.sort();
        prop_assert_eq!(a1, a2);
    }

    /// Answers of a well-designed pattern over any store are closed under
    /// the WDPT semantics invariants: domains contain the core variables.
    #[test]
    fn answers_always_bind_the_mandatory_core(
        (core, opts) in arb_pattern(),
        facts in prop::collection::vec((0u8..4, 0u8..3, 0u8..4), 1..12),
    ) {
        let mut i = Interner::new();
        let pat = build_pattern(&mut i, core, &opts);
        let p = pat.to_wdpt(None, &mut i).unwrap();
        let ts = build_store(&mut i, &facts);
        let answers = evaluate(&p, ts.database());
        let core_vars: Vec<wdpt::Var> =
            (0..=core).map(|t| i.var(&format!("a{t}"))).collect();
        for h in &answers {
            for v in &core_vars {
                prop_assert!(h.defines(*v), "mandatory variable unbound in {h}");
            }
        }
    }
}
