//! Round-trip and semantics properties of the {AND, OPT} front end, on
//! deterministically generated random patterns and stores
//! ([`wdpt::gen::Lcg`], fixed seeds).

use wdpt::core::evaluate;
use wdpt::gen::Lcg;
use wdpt::sparql::{parse_query, GraphPattern, TriplePattern, TripleStore};
use wdpt::{Interner, Term};

/// A random *well-designed-by-construction* pattern spec: the number of
/// mandatory core triples plus `(predicate, anchor)` choices for a chain of
/// OPTs whose right-hand sides reuse exactly one variable from the
/// mandatory part and introduce one fresh variable each.
fn random_pattern_spec(r: &mut Lcg) -> (u8, Vec<(u8, u8)>) {
    let core = 1 + r.gen_range(0..3) as u8;
    let n = r.gen_range(0..4);
    let opts = (0..n)
        .map(|_| (r.gen_range(0..3) as u8, r.gen_range(0..4) as u8))
        .collect();
    (core, opts)
}

fn random_facts(r: &mut Lcg, max: usize) -> Vec<(u8, u8, u8)> {
    let n = 1 + r.gen_range(0..max);
    (0..n)
        .map(|_| {
            (
                r.gen_range(0..4) as u8,
                r.gen_range(0..3) as u8,
                r.gen_range(0..4) as u8,
            )
        })
        .collect()
}

fn build_pattern(i: &mut Interner, core_triples: u8, opts: &[(u8, u8)]) -> GraphPattern {
    let preds = ["p", "q", "r"];
    let mut core: Option<GraphPattern> = None;
    for t in 0..core_triples {
        let s = Term::Var(i.var(&format!("a{t}")));
        let p = Term::Const(i.constant(preds[t as usize % 3]));
        let o = Term::Var(i.var(&format!("a{}", t + 1)));
        let g = GraphPattern::Triple(TriplePattern { s, p, o });
        core = Some(match core {
            None => g,
            Some(acc) => GraphPattern::And(Box::new(acc), Box::new(g)),
        });
    }
    let mut pattern = core.expect("at least one core triple");
    for (j, &(pred, anchor)) in opts.iter().enumerate() {
        let anchor = anchor % (core_triples + 1);
        let s = Term::Var(i.var(&format!("a{anchor}")));
        let p = Term::Const(i.constant(preds[pred as usize % 3]));
        let o = Term::Var(i.var(&format!("o{j}")));
        pattern = GraphPattern::Opt(
            Box::new(pattern),
            Box::new(GraphPattern::Triple(TriplePattern { s, p, o })),
        );
    }
    pattern
}

fn build_store(i: &mut Interner, facts: &[(u8, u8, u8)]) -> TripleStore {
    let preds = ["p", "q", "r"];
    let mut ts = TripleStore::new();
    for &(s, p, o) in facts {
        let sc = format!("n{s}");
        let oc = format!("n{o}");
        ts.insert_str(i, &sc, preds[p as usize % 3], &oc);
    }
    ts
}

/// display → parse round-trips structurally.
#[test]
fn display_parse_roundtrip() {
    let mut r = Lcg::new(0x5A59_0001);
    for _case in 0..48 {
        let (core, opts) = random_pattern_spec(&mut r);
        let mut i = Interner::new();
        let pat = build_pattern(&mut i, core, &opts);
        assert!(pat.is_well_designed());
        let text = pat.display(&i);
        let parsed = parse_query(&mut i, &text).unwrap();
        assert_eq!(parsed.pattern, pat, "core={core} opts={opts:?}");
    }
}

/// wdpt → pattern → wdpt preserves the tree and the semantics.
#[test]
fn wdpt_roundtrip_preserves_semantics() {
    let mut r = Lcg::new(0x5A59_0002);
    for _case in 0..48 {
        let (core, opts) = random_pattern_spec(&mut r);
        let facts = random_facts(&mut r, 10);
        let mut i = Interner::new();
        let pat = build_pattern(&mut i, core, &opts);
        let p = pat.to_wdpt(None, &mut i).unwrap();
        let back = GraphPattern::from_wdpt(&p).unwrap();
        let p2 = back.to_wdpt(None, &mut i).unwrap();
        assert_eq!(&p, &p2);
        let ts = build_store(&mut i, &facts);
        let mut a1 = evaluate(&p, ts.database());
        let mut a2 = evaluate(&p2, ts.database());
        a1.sort();
        a2.sort();
        assert_eq!(a1, a2, "core={core} opts={opts:?}");
    }
}

/// Answers of a well-designed pattern over any store are closed under the
/// WDPT semantics invariants: domains contain the core variables.
#[test]
fn answers_always_bind_the_mandatory_core() {
    let mut r = Lcg::new(0x5A59_0003);
    for _case in 0..48 {
        let (core, opts) = random_pattern_spec(&mut r);
        let facts = random_facts(&mut r, 12);
        let mut i = Interner::new();
        let pat = build_pattern(&mut i, core, &opts);
        let p = pat.to_wdpt(None, &mut i).unwrap();
        let ts = build_store(&mut i, &facts);
        let answers = evaluate(&p, ts.database());
        let core_vars: Vec<wdpt::Var> = (0..=core).map(|t| i.var(&format!("a{t}"))).collect();
        for h in &answers {
            for v in &core_vars {
                assert!(h.defines(*v), "mandatory variable unbound in {h}");
            }
        }
    }
}
