//! Properties of the approximation machinery (Sections 5–6): soundness,
//! maximality, class membership, and agreement between the CQ-level and
//! UWDPT-level pipelines, on deterministically generated random CQs
//! (std-only [`wdpt::gen::Lcg`], fixed seeds).

use wdpt::approx::cq_approx::{cq_approximations, semantically_in};
use wdpt::approx::uwdpt::{
    in_m_uwb, phi_cq, uwb_approximation, uwdpt_equivalent, uwdpt_subsumed, Uwdpt,
};
use wdpt::approx::wb::{find_wb_equivalent, wb_approximations};
use wdpt::core::{in_wb, subsumed, Engine, Wdpt, WdptBuilder, WidthKind};
use wdpt::cq::{contained_in, core_of, equivalent, in_tw, ConjunctiveQuery};
use wdpt::gen::Lcg;
use wdpt::model::{Atom, Interner};

/// A random Boolean CQ body over `e/2`: `n` variable pairs below `nv`.
fn random_spec(r: &mut Lcg, nv: u8, max_atoms: usize) -> Vec<(u8, u8)> {
    let n = 1 + r.gen_range(0..max_atoms);
    (0..n)
        .map(|_| {
            (
                r.gen_range(0..nv as usize) as u8,
                r.gen_range(0..nv as usize) as u8,
            )
        })
        .collect()
}

/// A random Boolean CQ over `e/2` with `nv` variables.
fn build_cq(i: &mut Interner, spec: &[(u8, u8)], nv: u8) -> ConjunctiveQuery {
    let e = i.pred("e");
    let atoms: Vec<Atom> = spec
        .iter()
        .map(|&(a, b)| {
            let va = i.var(&format!("v{}", a % nv));
            let vb = i.var(&format!("v{}", b % nv));
            Atom::new(e, vec![va.into(), vb.into()])
        })
        .collect();
    ConjunctiveQuery::boolean(atoms)
}

/// Core is equivalent to the query and idempotent.
#[test]
fn core_properties() {
    let mut r = Lcg::new(0xA110_0001);
    for _case in 0..40 {
        let spec = random_spec(&mut r, 5, 5);
        let mut i = Interner::new();
        let q = build_cq(&mut i, &spec, 5);
        let core = core_of(&q, &mut i);
        assert!(equivalent(&q, &core, &mut i), "spec={spec:?}");
        let twice = core_of(&core, &mut i);
        assert_eq!(&core, &twice, "spec={spec:?}");
        assert!(core.body().len() <= q.body().len());
    }
}

/// Semantic TW(1) membership coincides with "core has treewidth ≤ 1".
#[test]
fn semantic_membership_via_core() {
    let mut r = Lcg::new(0xA110_0002);
    for _case in 0..40 {
        let spec = random_spec(&mut r, 4, 5);
        let mut i = Interner::new();
        let q = build_cq(&mut i, &spec, 4);
        let via_core = in_tw(&core_of(&q, &mut i), 1);
        assert_eq!(
            semantically_in(&q, WidthKind::Tw, 1, &mut i),
            via_core,
            "spec={spec:?}"
        );
    }
}

/// Every TW(1)-approximation is contained in q, lies in TW(1), and is
/// maximal among the returned set.
#[test]
fn cq_approximations_are_sound_and_incomparable() {
    let mut r = Lcg::new(0xA110_0003);
    for _case in 0..40 {
        let spec = random_spec(&mut r, 4, 5);
        let mut i = Interner::new();
        let q = build_cq(&mut i, &spec, 4);
        let approxs = cq_approximations(&q, WidthKind::Tw, 1, &mut i);
        assert!(!approxs.is_empty());
        for a in &approxs {
            assert!(in_tw(a, 1));
            assert!(contained_in(a, &q, &mut i), "spec={spec:?}");
        }
        for (idx, a) in approxs.iter().enumerate() {
            for b in &approxs[idx + 1..] {
                assert!(
                    !contained_in(a, b, &mut i) || !contained_in(b, a, &mut i),
                    "two returned approximations are strictly comparable: spec={spec:?}"
                );
            }
        }
        // If q is semantically in TW(1), its approximation is equivalent
        // to q itself.
        if semantically_in(&q, WidthKind::Tw, 1, &mut i) {
            assert!(approxs.iter().any(|a| equivalent(a, &q, &mut i)));
        }
    }
}

/// UWDPT pipeline: φ ≡ₛ φ_cq, the approximation is subsumed by φ, and
/// membership matches the witness constructor.
#[test]
fn uwdpt_pipeline_properties() {
    let mut r = Lcg::new(0xA110_0004);
    for _case in 0..40 {
        let spec = random_spec(&mut r, 3, 4);
        let mut i = Interner::new();
        let q = build_cq(&mut i, &spec, 3);
        let e = i.pred("e");
        let x = i.var("px");
        let y = i.var("py");
        // A two-node disjunct plus the random CQ as a single-node disjunct.
        let mut b = WdptBuilder::new(vec![Atom::new(e, vec![x.into(), y.into()])]);
        b.child(0, vec![Atom::new(e, vec![y.into(), y.into()])]);
        let p1 = b.build(vec![x]).unwrap();
        let p2 = Wdpt::from_cq(&q);
        let phi = Uwdpt::new(vec![p1, p2]);
        // φ ≡ₛ φ_cq.
        let as_union = Uwdpt::new(phi_cq(&phi).iter().map(Wdpt::from_cq).collect());
        assert!(uwdpt_equivalent(&phi, &as_union, Engine::Backtrack, &mut i));
        // Approximation soundness.
        let approx = uwb_approximation(&phi, WidthKind::Tw, 1, &mut i);
        assert!(uwdpt_subsumed(&approx, &phi, Engine::Backtrack, &mut i));
        // Membership ⇒ the approximation is even ≡ₛ-equivalent to φ.
        if in_m_uwb(&phi, WidthKind::Tw, 1, &mut i) {
            assert!(uwdpt_subsumed(&phi, &approx, Engine::Backtrack, &mut i));
        }
    }
}

#[test]
fn wb_search_and_approximations_on_known_cases() {
    let mut i = Interner::new();
    // Foldable triangle: in M(WB(1)).
    let fold = WdptBuilder::new(
        wdpt::model::parse::parse_atoms(&mut i, "e(?x,?y) e(?y,?z) e(?z,?x) e(?w,?w) e(?x,?w)")
            .unwrap(),
    )
    .build(vec![])
    .unwrap();
    let w = find_wb_equivalent(&fold, WidthKind::Tw, 1, &mut i).expect("foldable");
    assert!(in_wb(&w, WidthKind::Tw, 1));
    // Genuine triangle: not in M(WB(1)); its approximations are sound.
    let tri = WdptBuilder::new(
        wdpt::model::parse::parse_atoms(&mut i, "e(?x,?y) e(?y,?z) e(?z,?x)").unwrap(),
    )
    .build(vec![])
    .unwrap();
    assert!(find_wb_equivalent(&tri, WidthKind::Tw, 1, &mut i).is_none());
    for a in wb_approximations(&tri, WidthKind::Tw, 1, &mut i) {
        assert!(in_wb(&a, WidthKind::Tw, 1));
        assert!(subsumed(&a, &tri, Engine::Backtrack, &mut i));
    }
}
