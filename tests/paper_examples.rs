//! Integration tests asserting the paper's worked examples verbatim
//! (experiments E1 and E11 of `DESIGN.md`).

use wdpt::approx::uwdpt::{phi_cq, Uwdpt};
use wdpt::core::{
    evaluate, evaluate_max, has_bounded_interface, interface_width, is_locally_in, WidthKind,
};
use wdpt::model::parse::parse_mapping;
use wdpt::sparql::{parse_query, TripleStore};
use wdpt::Interner;

const QUERY1: &str = r#"(((?x, recorded_by, ?y) AND (?x, published, "after_2010"))
    OPT (?x, NME_rating, ?z)) OPT (?y, formed_in, ?z2)"#;

fn example2_store(i: &mut Interner) -> TripleStore {
    let mut ts = TripleStore::new();
    for (s, p, o) in [
        ("Our_love", "recorded_by", "Caribou"),
        ("Our_love", "published", "after_2010"),
        ("Swim", "recorded_by", "Caribou"),
        ("Swim", "published", "after_2010"),
        ("Swim", "NME_rating", "2"),
    ] {
        ts.insert_str(i, s, p, o);
    }
    ts
}

#[test]
fn example1_query_is_well_designed_and_is_figure1() {
    let mut i = Interner::new();
    let q = parse_query(&mut i, QUERY1).unwrap();
    assert!(q.pattern.is_well_designed());
    let p = q.to_wdpt(&mut i).unwrap();
    assert_eq!(p.node_count(), 3);
    assert_eq!(p.children(0).len(), 2);
    assert_eq!(p.atoms(0).len(), 2);
}

#[test]
fn example2_evaluation() {
    let mut i = Interner::new();
    let ts = example2_store(&mut i);
    let p = parse_query(&mut i, QUERY1)
        .unwrap()
        .to_wdpt(&mut i)
        .unwrap();
    let mut answers = evaluate(&p, ts.database());
    answers.sort();
    let mu1 = parse_mapping(&mut i, r#"?x -> "Our_love", ?y -> "Caribou""#).unwrap();
    let mu2 = parse_mapping(&mut i, r#"?x -> "Swim", ?y -> "Caribou", ?z -> "2""#).unwrap();
    let mut expected = vec![mu1, mu2];
    expected.sort();
    assert_eq!(answers, expected);
}

#[test]
fn example3_projection() {
    let mut i = Interner::new();
    let ts = example2_store(&mut i);
    let src = format!("SELECT ?y ?z ?z2 WHERE {{ {QUERY1} }}");
    let p = parse_query(&mut i, &src).unwrap().to_wdpt(&mut i).unwrap();
    let mut answers = evaluate(&p, ts.database());
    answers.sort();
    let m1 = parse_mapping(&mut i, r#"?y -> "Caribou""#).unwrap();
    let m2 = parse_mapping(&mut i, r#"?y -> "Caribou", ?z -> "2""#).unwrap();
    let mut expected = vec![m1, m2];
    expected.sort();
    assert_eq!(answers, expected);
}

#[test]
fn example6_class_membership() {
    let mut i = Interner::new();
    let p = parse_query(&mut i, QUERY1)
        .unwrap()
        .to_wdpt(&mut i)
        .unwrap();
    assert!(is_locally_in(&p, WidthKind::Tw, 1));
    assert_eq!(interface_width(&p), 2);
    assert!(has_bounded_interface(&p, 2));
}

#[test]
fn example7_maximal_mappings() {
    let mut i = Interner::new();
    let ts = example2_store(&mut i);
    let src = format!("SELECT ?y ?z WHERE {{ {QUERY1} }}");
    let p = parse_query(&mut i, &src).unwrap().to_wdpt(&mut i).unwrap();
    let all = evaluate(&p, ts.database());
    let max = evaluate_max(&p, ts.database());
    assert_eq!(all.len(), 2);
    let m2 = parse_mapping(&mut i, r#"?y -> "Caribou", ?z -> "2""#).unwrap();
    assert_eq!(max, vec![m2]);
}

#[test]
fn example8_phi_cq_translation() {
    // The union of four CQs from Example 8, with the advertised heads.
    let mut i = Interner::new();
    let src = format!("SELECT ?y ?z ?z2 WHERE {{ {QUERY1} }}");
    let p = parse_query(&mut i, &src).unwrap().to_wdpt(&mut i).unwrap();
    let cqs = phi_cq(&Uwdpt::singleton(p));
    assert_eq!(cqs.len(), 4);
    let y = i.var("y");
    let z = i.var("z");
    let z2 = i.var("z2");
    let mut heads: Vec<Vec<wdpt::Var>> = cqs.iter().map(|q| q.head().to_vec()).collect();
    heads.iter_mut().for_each(|h| h.sort());
    let mut expected = vec![vec![y], vec![y, z], vec![y, z2], vec![y, z, z2]];
    expected.iter_mut().for_each(|h| h.sort());
    for e in &expected {
        assert!(heads.contains(e), "missing CQ with head {e:?}");
    }
    // Body sizes: 2, 3, 3, 4 atoms.
    let mut sizes: Vec<usize> = cqs.iter().map(|q| q.body().len()).collect();
    sizes.sort_unstable();
    assert_eq!(sizes, vec![2, 3, 3, 4]);
}
