//! `wdpt` — command-line front end for the WDPT library.
//!
//! ```text
//! wdpt eval      --db DB.facts (--tree TREE.wdpt | --sparql QUERY)   evaluate p(D)
//! wdpt check     --db DB.facts (--tree|--sparql) --mapping M [--mode eval|partial|max]
//! wdpt classify  (--tree|--sparql)                                  class membership
//! wdpt subsume   --left TREE --right TREE                           decide p1 ⊑ p2
//! wdpt optimize  (--tree|--sparql)                                  Lemma 1 normal form
//! ```
//!
//! Databases use the fact syntax of `wdpt_model::parse`
//! (`rec_by(Swim, Caribou) publ(Swim, "after_2010") …`); trees use the
//! `FREE`/`NODE` format of `wdpt_core::text`; `--sparql` accepts the
//! paper's algebraic {AND, OPT} notation. Arguments starting with `@` are
//! read from the named file, anything else is taken literally.

use std::process::ExitCode;
use wdpt::core::{
    classes, eval_bounded_interface, evaluate, evaluate_max, max_eval_decide, normalize,
    parse_wdpt, partial_eval_decide, subsumed, to_text, Engine, Wdpt, WidthKind,
};
use wdpt::model::parse::{parse_database, parse_mapping};
use wdpt::sparql::parse_query;
use wdpt::{Database, Interner};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Flag value, reading `@file` indirections.
    fn content(&self, name: &str) -> Result<Option<String>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => match v.strip_prefix('@') {
                Some(path) => std::fs::read_to_string(path)
                    .map(Some)
                    .map_err(|e| format!("cannot read {path}: {e}")),
                None => Ok(Some(v.to_owned())),
            },
        }
    }
}

fn parse_args(argv: &[String]) -> Result<(String, Args), String> {
    let mut it = argv.iter();
    let cmd = it.next().ok_or_else(usage)?.clone();
    let mut flags = Vec::new();
    while let Some(flag) = it.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{flag}'"))?;
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.push((name.to_owned(), value.clone()));
    }
    Ok((cmd, Args { flags }))
}

fn usage() -> String {
    "usage: wdpt <eval|check|classify|subsume|optimize> [--db ...] [--tree ...] \
     [--sparql ...] [--mapping ...] [--mode eval|partial|max] [--engine backtrack|tw:K|hw:K] \
     [--left ...] [--right ...]  (values starting with @ are read from files)"
        .to_owned()
}

fn load_tree(args: &Args, i: &mut Interner) -> Result<Wdpt, String> {
    if let Some(src) = args.content("tree")? {
        return parse_wdpt(i, &src).map_err(|e| e.to_string());
    }
    if let Some(src) = args.content("sparql")? {
        let q = parse_query(i, &src).map_err(|e| e.to_string())?;
        return q.to_wdpt(i).map_err(|e| e.to_string());
    }
    Err("need --tree or --sparql".to_owned())
}

fn load_db(args: &Args, i: &mut Interner) -> Result<Database, String> {
    let src = args.content("db")?.ok_or_else(|| "need --db".to_owned())?;
    parse_database(i, &src).map_err(|e| e.to_string())
}

fn engine(args: &Args) -> Result<Engine, String> {
    match args.get("engine") {
        None | Some("backtrack") => Ok(Engine::Backtrack),
        Some(s) => {
            if let Some(k) = s.strip_prefix("tw:") {
                k.parse()
                    .map(Engine::Tw)
                    .map_err(|_| format!("--engine tw:K needs a positive integer, got '{k}'"))
            } else if let Some(k) = s.strip_prefix("hw:") {
                k.parse()
                    .map(Engine::Hw)
                    .map_err(|_| format!("--engine hw:K needs a positive integer, got '{k}'"))
            } else {
                Err(format!(
                    "unknown engine '{s}' (expected backtrack, tw:K, or hw:K)"
                ))
            }
        }
    }
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, args) = parse_args(&argv)?;
    let mut i = Interner::new();
    match cmd.as_str() {
        "eval" => {
            let p = load_tree(&args, &mut i)?;
            let db = load_db(&args, &mut i)?;
            let answers = if args.get("max").is_some() {
                evaluate_max(&p, &db)
            } else {
                evaluate(&p, &db)
            };
            println!("{} answer(s):", answers.len());
            for a in &answers {
                println!("  {}", a.display(&i));
            }
            Ok(())
        }
        "check" => {
            let p = load_tree(&args, &mut i)?;
            let db = load_db(&args, &mut i)?;
            let m = args
                .content("mapping")?
                .ok_or_else(|| "need --mapping".to_owned())?;
            let h = parse_mapping(&mut i, &m).map_err(|e| e.to_string())?;
            let eng = engine(&args)?;
            let verdict = match args.get("mode").unwrap_or("eval") {
                "eval" => eval_bounded_interface(&p, &db, &h, eng),
                "partial" => partial_eval_decide(&p, &db, &h, eng),
                "max" => max_eval_decide(&p, &db, &h, eng),
                other => return Err(format!("unknown mode '{other}'")),
            };
            println!("{verdict}");
            Ok(())
        }
        "classify" => {
            let p = load_tree(&args, &mut i)?;
            println!("nodes: {}", p.node_count());
            println!("free variables: {}", p.free_vars().len());
            println!("projection-free: {}", p.is_projection_free());
            println!("interface width: {}", classes::interface_width(&p));
            for k in 1..=3usize {
                println!(
                    "locally in TW({k}): {}",
                    classes::is_locally_in(&p, WidthKind::Tw, k)
                );
            }
            if p.rooted_subtree_count() <= 4096 {
                for k in 1..=3usize {
                    println!(
                        "globally in TW({k}): {}",
                        classes::is_globally_in(&p, WidthKind::Tw, k)
                    );
                }
            } else {
                println!(
                    "globally in TW(k): skipped ({} subtrees)",
                    p.rooted_subtree_count()
                );
            }
            Ok(())
        }
        "subsume" => {
            let left = args
                .content("left")?
                .ok_or_else(|| "need --left".to_owned())?;
            let right = args
                .content("right")?
                .ok_or_else(|| "need --right".to_owned())?;
            let p1 = parse_wdpt(&mut i, &left).map_err(|e| e.to_string())?;
            let p2 = parse_wdpt(&mut i, &right).map_err(|e| e.to_string())?;
            let eng = engine(&args)?;
            println!("{}", subsumed(&p1, &p2, eng, &mut i));
            Ok(())
        }
        "optimize" => {
            let p = load_tree(&args, &mut i)?;
            let n = normalize(&p);
            println!(
                "# normalized: {} -> {} nodes (≡ₛ-preserving)",
                p.node_count(),
                n.node_count()
            );
            print!("{}", to_text(&n, &i));
            Ok(())
        }
        "--help" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}
