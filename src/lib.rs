//! # wdpt — well-designed pattern trees
//!
//! Facade crate re-exporting the full public API of the WDPT reproduction of
//! Barceló & Pichler, *Efficient Evaluation and Approximation of
//! Well-designed Pattern Trees* (PODS 2015).
//!
//! See the individual crates for details:
//! * [`model`] — terms, atoms, databases, partial mappings.
//! * [`decomp`] — hypergraphs, treewidth, hypertreewidth, β-acyclicity.
//! * [`cq`] — conjunctive queries and their evaluation engines.
//! * [`core`] — WDPTs, tractable classes, EVAL / PARTIAL-EVAL / MAX-EVAL,
//!   subsumption and subsumption-equivalence.
//! * [`approx`] — semantic optimization and approximation (`WB(k)`,
//!   `UWB(k)`, the Figure 2 family).
//! * [`sparql`] — the {AND, OPT} front end and RDF triple stores.
//! * [`gen`] — workload generators and hardness reductions.
//!
//! # Example
//!
//! The paper's running query (Example 1) over the Example 2 database:
//!
//! ```
//! use wdpt::sparql::{parse_query, TripleStore};
//! use wdpt::core::evaluate;
//! use wdpt::Interner;
//!
//! let mut i = Interner::new();
//! let q = parse_query(&mut i, r#"
//!     (((?x, recorded_by, ?y) AND (?x, published, "after_2010"))
//!        OPT (?x, NME_rating, ?z)) OPT (?y, formed_in, ?z2)"#).unwrap();
//! let p = q.to_wdpt(&mut i).unwrap();
//!
//! let mut store = TripleStore::new();
//! store.insert_str(&mut i, "Swim", "recorded_by", "Caribou");
//! store.insert_str(&mut i, "Swim", "published", "after_2010");
//! store.insert_str(&mut i, "Swim", "NME_rating", "2");
//!
//! let answers = evaluate(&p, store.database());
//! assert_eq!(answers.len(), 1);
//! assert_eq!(answers[0].len(), 3); // x, y, and the optional z
//! ```

pub use wdpt_approx as approx;
pub use wdpt_core as core;
pub use wdpt_cq as cq;
pub use wdpt_decomp as decomp;
pub use wdpt_gen as gen;
pub use wdpt_model as model;
pub use wdpt_sparql as sparql;

pub use wdpt_model::{Atom, Const, Database, Interner, Mapping, Pred, Term, Var};
